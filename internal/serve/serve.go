// Package serve is the legalization server: it holds parsed designs
// resident in memory and serves concurrent legalize, evaluate and
// audit requests over HTTP, speaking the .mcl text format on the wire
// (see docs/ROBUSTNESS.md, "Serving").
//
// The server is built on the pipeline's resilience layer rather than
// beside it: every run is gated and verified by default, failures
// cross the wire as the same typed taxonomy the CLI reports
// (Error/Kind mirrors GateReport/RunStatus), per-request deadlines ride
// the existing context plumbing with deadline expiry distinguished
// from client cancellation, and a panic anywhere in a handler is
// contained to that request. Admission control is a fixed slot pool:
// an overloaded server answers 429 with Retry-After immediately
// instead of queuing unboundedly.
//
// Resident designs are immutable once stored — a legalization run
// always works on a private clone — so any number of requests can read
// the same design concurrently.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/flow"
	"mclegal/internal/model"
	"mclegal/internal/seg"
	"mclegal/internal/stage"
)

// Config tunes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxInflight bounds how many legalize/evaluate/audit requests run
	// concurrently; requests beyond it are refused with 429 +
	// Retry-After rather than queued (0 = 4 slots).
	MaxInflight int
	// DefaultTimeout is the per-request deadline budget when the client
	// sends no ?timeout (0 = 1m); MaxTimeout caps client-requested
	// budgets (0 = 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Limits bounds untrusted .mcl request bodies; the zero value picks
	// a 64 MiB / 4M-entity default. Oversized bodies fail typed with
	// KindLimit (413), never by exhausting memory.
	Limits bmark.Limits
	// Workers and Shards are the default pipeline concurrency knobs for
	// runs that do not override them per request.
	Workers int
	Shards  int
	// FaultHook, when set, supplies a fault injector for each
	// legalization run (the chaos suite's seam). nil runs are
	// injection-free.
	FaultHook func(r *http.Request) *faults.Injector
}

// Server holds resident designs and serves legalization requests. Use
// New; the zero value is not usable.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.RWMutex
	designs map[string]*model.Design

	// sem is the admission slot pool; Drain takes every slot to wait
	// out in-flight work.
	sem      chan struct{}
	draining atomic.Bool

	// workCtx parents every run's context; cancelWork aborts all
	// in-flight runs when the drain grace expires.
	workCtx    context.Context
	cancelWork context.CancelFunc
}

// New builds a Server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.Limits == (bmark.Limits{}) {
		cfg.Limits = bmark.Limits{MaxBytes: 64 << 20, MaxCount: 4 << 20}
	}
	workCtx, cancelWork := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		designs:    make(map[string]*model.Design),
		sem:        make(chan struct{}, cfg.MaxInflight),
		workCtx:    workCtx,
		cancelWork: cancelWork,
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.guard(s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.guard(s.handleReadyz))
	mux.HandleFunc("GET /designs", s.guard(s.handleListDesigns))
	mux.HandleFunc("POST /designs/{name}", s.guard(s.handlePutDesign))
	mux.HandleFunc("GET /designs/{name}", s.guard(s.handleGetDesign))
	mux.HandleFunc("DELETE /designs/{name}", s.guard(s.handleDeleteDesign))
	for _, route := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /legalize", s.handleLegalize},
		{"POST /legalize/{name}", s.handleLegalize},
		{"POST /evaluate", s.handleEvaluate},
		{"POST /evaluate/{name}", s.handleEvaluate},
		{"POST /audit", s.handleAudit},
		{"POST /audit/{name}", s.handleAudit},
	} {
		mux.HandleFunc(route.pattern, s.guard(s.admit(route.h)))
	}
	s.mux = mux
	return s
}

// Handler is the server's HTTP handler; mount it on an http.Server (or
// an httptest.Server in tests).
func (s *Server) Handler() http.Handler { return s.mux }

// AddDesign stores a resident design under name, replacing any
// previous one. The design is cloned on the way in: the caller keeps
// ownership of d, and the resident copy is never mutated afterwards.
//
//mclegal:writes design.meta the incoming design is cloned into the store; the clone's cell tables are written during the deep copy
func (s *Server) AddDesign(name string, d *model.Design) {
	c := d.Clone()
	s.mu.Lock()
	s.designs[name] = c
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the work pool down: new run requests are
// refused with 503 (draining) immediately, in-flight runs get until
// ctx expires to finish, and when the grace runs out every remaining
// run is cancelled — each aborts at its next unit of work and answers
// its client with a typed partial-result error. Drain returns once no
// run is in flight; the returned error is ctx.Err() when the grace
// expired (a forced drain) and nil for a clean one.
//
// Drain does not close HTTP listeners — the caller owns its
// http.Server and runs Shutdown alongside (see cmd/mclegald).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// When the grace expires, cancel every in-flight run; the blocking
	// slot acquisitions below are then guaranteed to make progress.
	stop := context.AfterFunc(ctx, s.cancelWork)
	defer stop() //mclegal:writeset stop is context.AfterFunc's own cancellation handle; it touches only the context machinery
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	// All slots held: no run is in flight and none can be admitted.
	s.cancelWork() //mclegal:writeset cancelWork is the server's own context.CancelFunc; it touches only the context machinery
	return ctx.Err()
}

// guard contains a panicking handler to its own request: the client
// gets a typed 500 and the server keeps serving. (Gated pipeline runs
// already convert stage panics to errors; this is the belt for
// everything outside them.)
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				writeError(w, &Error{Kind: KindPanic, Message: fmt.Sprintf("request handler panicked: %v", v)})
			}
		}()
		h(w, r) //mclegal:writeset h is one of this server's own handlers, each individually proven inside the clone boundary
	}
}

// admit is the admission-control wrapper for run endpoints: draining
// servers refuse immediately with 503, and a full slot pool refuses
// with 429 + Retry-After instead of queuing. The acquisition is a
// non-blocking single-communication select, so overload can never
// build an unbounded queue.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, &Error{Kind: KindDraining, Message: "server is draining"})
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			writeError(w, &Error{
				Kind:              KindOverload,
				Message:           fmt.Sprintf("all %d admission slots are busy", cap(s.sem)),
				RetryAfterSeconds: 1,
			})
			return
		}
		defer func() { <-s.sem }()
		h(w, r) //mclegal:writeset h is one of this server's own handlers, each individually proven inside the clone boundary
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, &Error{Kind: KindDraining, Message: "server is draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

// designInfo is one row of GET /designs.
type designInfo struct {
	Name     string `json:"name"`
	Cells    int    `json:"cells"`
	Movables int    `json:"movables"`
	Fences   int    `json:"fences"`
	Nets     int    `json:"nets"`
}

func (s *Server) handleListDesigns(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.designs))
	for name := range s.designs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]designInfo, 0, len(names))
	for _, name := range names {
		d := s.designs[name]
		out = append(out, designInfo{
			Name:     name,
			Cells:    len(d.Cells),
			Movables: d.MovableCount(),
			Fences:   len(d.Fences),
			Nets:     len(d.Nets),
		})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutDesign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, perr := s.parseBody(r)
	if perr != nil {
		writeError(w, perr)
		return
	}
	s.mu.Lock()
	s.designs[name] = d
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, designInfo{
		Name:     name,
		Cells:    len(d.Cells),
		Movables: d.MovableCount(),
		Fences:   len(d.Fences),
		Nets:     len(d.Nets),
	})
}

func (s *Server) handleGetDesign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	d := s.designs[name]
	s.mu.RUnlock()
	if d == nil {
		writeError(w, &Error{Kind: KindNotFound, Message: fmt.Sprintf("no resident design %q", name)})
		return
	}
	// Resident designs are immutable, so serializing without the lock
	// is safe.
	writeDesignBody(w, d)
}

func (s *Server) handleDeleteDesign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.designs[name]
	delete(s.designs, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, &Error{Kind: KindNotFound, Message: fmt.Sprintf("no resident design %q", name)})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLegalize(w http.ResponseWriter, r *http.Request) {
	p, perr := s.parseRunParams(r)
	if perr != nil {
		writeError(w, perr)
		return
	}
	d, perr := s.requestDesign(r)
	if perr != nil {
		writeError(w, perr)
		return
	}
	ctx, cancel := s.runContext(r, p.timeout)
	defer cancel()

	opt := p.opt
	if s.cfg.FaultHook != nil {
		opt.Faults = s.cfg.FaultHook(r)
	}
	res, err := flow.RunContext(ctx, d, opt)
	if err != nil {
		writeError(w, s.classifyRunError(r, res, err))
		return
	}

	h := w.Header()
	h.Set("X-Mclegal-Status", res.Status.String())
	h.Set("X-Mclegal-Score", strconv.FormatFloat(res.Score, 'f', 4, 64))
	h.Set("X-Mclegal-Hpwl", fmt.Sprintf("%d %d", res.HPWLBefore, res.HPWLAfter))
	h.Set("X-Mclegal-Gates", strconv.Itoa(len(res.Gates)))
	writeDesignBody(w, d)
}

// evaluateResponse is the JSON result of POST /evaluate.
type evaluateResponse struct {
	Cells          int     `json:"cells"`
	HPWLBefore     int64   `json:"hpwl_before"`
	HPWLAfter      int64   `json:"hpwl_after"`
	Score          float64 `json:"score"`
	AvgDispRows    float64 `json:"avg_disp_rows"`
	MaxDispRows    float64 `json:"max_disp_rows"`
	TotalDispSites float64 `json:"total_disp_sites"`
	PinViolations  int     `json:"pin_violations"`
	EdgeViolations int     `json:"edge_violations"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	d, perr := s.requestDesign(r)
	if perr != nil {
		writeError(w, perr)
		return
	}
	// HPWL-before is measured at the GP positions, on a scratch clone
	// so the scored placement is untouched.
	gp := d.Clone()
	gp.ResetToGP()
	res := flow.Evaluate(d, eval.HPWL(gp))
	writeJSON(w, http.StatusOK, evaluateResponse{
		Cells:          d.MovableCount(),
		HPWLBefore:     res.HPWLBefore,
		HPWLAfter:      res.HPWLAfter,
		Score:          res.Score,
		AvgDispRows:    res.Metrics.AvgDisp,
		MaxDispRows:    res.Metrics.MaxDisp,
		TotalDispSites: res.Metrics.TotalDispSites,
		PinViolations:  res.Violations.Pin(),
		EdgeViolations: res.Violations.EdgeSpacing,
	})
}

// auditResponse is the JSON result of POST /audit.
type auditResponse struct {
	Legal      bool     `json:"legal"`
	Violations int      `json:"violations"`
	Sample     []string `json:"sample,omitempty"`
}

// auditSampleCap bounds how many violations an audit response spells
// out; Violations always carries the full count.
const auditSampleCap = 20

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	d, perr := s.requestDesign(r)
	if perr != nil {
		writeError(w, perr)
		return
	}
	grid, err := seg.Build(d)
	if err != nil {
		writeError(w, &Error{Kind: KindInternal, Message: err.Error()})
		return
	}
	vs := eval.Audit(d, grid)
	resp := auditResponse{Legal: len(vs) == 0, Violations: len(vs)}
	for i, v := range vs {
		if i == auditSampleCap {
			break
		}
		resp.Sample = append(resp.Sample, v.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestDesign resolves the design a run request targets: a private
// clone of the resident design named in the path, or — on the
// name-less endpoints — the .mcl request body. Either way the caller
// owns the result and may mutate it freely.
func (s *Server) requestDesign(r *http.Request) (*model.Design, *Error) {
	if name := r.PathValue("name"); name != "" {
		s.mu.RLock()
		d := s.designs[name]
		s.mu.RUnlock()
		if d == nil {
			return nil, &Error{Kind: KindNotFound, Message: fmt.Sprintf("no resident design %q", name)}
		}
		return d.Clone(), nil
	}
	return s.parseBody(r)
}

// parseBody reads one .mcl design from the request body under the
// configured limits.
func (s *Server) parseBody(r *http.Request) (*model.Design, *Error) {
	d, err := bmark.ReadWithMode(r.Body, bmark.ModeStrict, bmark.WithLimits(s.cfg.Limits))
	if err != nil {
		var le *bmark.LimitError
		if errors.As(err, &le) {
			return nil, &Error{Kind: KindLimit, Message: err.Error()}
		}
		return nil, &Error{Kind: KindParse, Message: err.Error()}
	}
	return d, nil
}

// runParams is a run request's decoded query parameters.
type runParams struct {
	opt     flow.Options
	timeout time.Duration
}

// parseRunParams decodes the run options of a legalize request.
// Defaults are the robust-serving ones: gates on, fallback recovery,
// the server's configured worker/shard counts, and DefaultTimeout.
func (s *Server) parseRunParams(r *http.Request) (runParams, *Error) {
	q := r.URL.Query()
	p := runParams{
		opt: flow.Options{
			Workers:  s.cfg.Workers,
			Shards:   s.cfg.Shards,
			Verify:   true,
			Recovery: stage.RecoverFallback,
		},
		timeout: s.cfg.DefaultTimeout,
	}
	boolParam := func(key string, dst *bool) *Error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return &Error{Kind: KindBadRequest, Message: fmt.Sprintf("?%s=%q is not a boolean", key, v)}
		}
		*dst = b
		return nil
	}
	for _, bp := range []struct {
		key string
		dst *bool
	}{
		{"routability", &p.opt.Routability},
		{"total", &p.opt.TotalDisplacement},
		{"verify", &p.opt.Verify},
	} {
		if perr := boolParam(bp.key, bp.dst); perr != nil {
			return p, perr
		}
	}
	if v := q.Get("recovery"); v != "" {
		pol, err := stage.ParsePolicy(v)
		if err != nil {
			return p, &Error{Kind: KindBadRequest, Message: err.Error()}
		}
		p.opt.Recovery = pol
	}
	if v := q.Get("shards"); v != "" {
		n, err := flow.ParseShards(v)
		if err != nil {
			return p, &Error{Kind: KindBadRequest, Message: err.Error()}
		}
		p.opt.Shards = n
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, &Error{Kind: KindBadRequest, Message: fmt.Sprintf("?workers=%q is not a non-negative integer", v)}
		}
		p.opt.Workers = n
	}
	if v := q.Get("timeout"); v != "" {
		dur, err := time.ParseDuration(v)
		if err != nil || dur <= 0 {
			return p, &Error{Kind: KindBadRequest, Message: fmt.Sprintf("?timeout=%q is not a positive duration", v)}
		}
		p.timeout = dur
	}
	if p.timeout > s.cfg.MaxTimeout {
		p.timeout = s.cfg.MaxTimeout
	}
	return p, nil
}

// runContext derives a run's context: the request context (so a client
// going away cancels the run), additionally cancelled when the drain
// grace expires, under the request's deadline budget.
func (s *Server) runContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.workCtx, cancel)
	tctx, tcancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		tcancel()
		stop()
		cancel()
	}
}

// classifyRunError turns a pipeline failure into the wire taxonomy,
// attaching the typed partial results (run status, gate reports) the
// failed run still produced.
func (s *Server) classifyRunError(r *http.Request, res flow.Result, err error) *Error {
	e := &Error{Message: err.Error(), Status: res.Status.String()}
	for _, g := range res.Gates {
		e.Gates = append(e.Gates, g.String())
	}
	var de *flow.DeadlineError
	var ge *stage.GateError
	switch {
	case errors.As(err, &de):
		e.Kind = KindDeadline
		e.Message = fmt.Sprintf("deadline budget expired after %v of work", de.Elapsed)
	case errors.As(err, &ge):
		e.Kind = KindGate
		e.Stage = ge.Report.Stage
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		e.Kind = KindCanceled
		e.Message = "client cancelled the request mid-run"
	case errors.Is(err, context.Canceled) && s.workCtx.Err() != nil:
		e.Kind = KindDraining
		e.Message = "drain grace expired mid-run"
	default:
		e.Kind = KindInternal
	}
	return e
}

// writeDesignBody serializes d as the .mcl response body.
func writeDesignBody(w http.ResponseWriter, d *model.Design) {
	var buf bytes.Buffer
	if err := bmark.Write(&buf, d); err != nil {
		writeError(w, &Error{Kind: KindInternal, Message: err.Error()})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}
