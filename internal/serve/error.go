package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Kind classifies a request failure for the wire contract. Every error
// the server sends is one of these kinds, serialized as the JSON body
// {"error":{"kind":...,"message":...}} with the HTTP status of
// Kind.HTTPStatus — clients dispatch on the kind, not on message text.
type Kind string

const (
	// KindParse: the request body is not a well-formed .mcl design.
	KindParse Kind = "parse"
	// KindLimit: the request body exceeds the server's byte or
	// section-count limits.
	KindLimit Kind = "limit"
	// KindNotFound: the named resident design does not exist.
	KindNotFound Kind = "not-found"
	// KindBadRequest: a query parameter is malformed or out of range.
	KindBadRequest Kind = "bad-request"
	// KindGate: the run failed a legality gate (strict or exhausted
	// fallback recovery); Stage and Gates carry the report.
	KindGate Kind = "gate"
	// KindDeadline: the per-request deadline budget expired mid-run —
	// the design may be fine, the run just needs more time.
	KindDeadline Kind = "deadline"
	// KindCanceled: the client went away mid-run.
	KindCanceled Kind = "canceled"
	// KindDraining: the server is shutting down; retry elsewhere.
	KindDraining Kind = "draining"
	// KindOverload: all admission slots are busy; retry after
	// RetryAfterSeconds.
	KindOverload Kind = "overload"
	// KindPanic: the request handler panicked; the panic was contained
	// to this request.
	KindPanic Kind = "panic"
	// KindInternal: any other server-side failure.
	KindInternal Kind = "internal"
)

// statusClientClosedRequest is the de-facto standard (nginx) status for
// a client that cancelled its own request; net/http has no name for it.
const statusClientClosedRequest = 499

// HTTPStatus maps a failure kind to its HTTP status code.
func (k Kind) HTTPStatus() int {
	switch k {
	case KindParse, KindBadRequest:
		return http.StatusBadRequest
	case KindLimit:
		return http.StatusRequestEntityTooLarge
	case KindNotFound:
		return http.StatusNotFound
	case KindGate:
		return http.StatusUnprocessableEntity
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindCanceled:
		return statusClientClosedRequest
	case KindDraining:
		return http.StatusServiceUnavailable
	case KindOverload:
		return http.StatusTooManyRequests
	case KindPanic, KindInternal:
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// Error is the server's typed request failure: what went wrong (Kind),
// for humans (Message), and — for failures of a legalization run — the
// stage that failed, the run's trust status at the point of failure,
// and every gate intervention. It is both the Go error the handlers
// pass around and the JSON wire form clients receive.
type Error struct {
	Kind    Kind   `json:"kind"`
	Message string `json:"message"`
	// Stage names the pipeline stage a KindGate failure stopped at.
	Stage string `json:"stage,omitempty"`
	// Status is the run's stage.Status verdict when a run got far
	// enough to have one ("legal", "recovered", "partial") — the typed
	// partial result of a deadline/cancel/drain interruption.
	Status string `json:"status,omitempty"`
	// Gates lists the run's gate interventions, in order.
	Gates []string `json:"gates,omitempty"`
	// RetryAfterSeconds is set on KindOverload and mirrored into the
	// Retry-After header.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func (e *Error) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("serve: %s: %s (stage %s)", e.Kind, e.Message, e.Stage)
	}
	return fmt.Sprintf("serve: %s: %s", e.Kind, e.Message)
}

// errorBody is the wire envelope: {"error": {...}}.
type errorBody struct {
	Error *Error `json:"error"`
}

// writeError sends e as the response. Write failures are ignored: they
// mean the client is gone, which no response can fix.
func writeError(w http.ResponseWriter, e *Error) {
	h := w.Header()
	if e.RetryAfterSeconds > 0 {
		h.Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds))
	}
	h.Set("Content-Type", "application/json")
	w.WriteHeader(e.Kind.HTTPStatus())
	enc := json.NewEncoder(w)
	_ = enc.Encode(errorBody{Error: e})
}

// writeJSON sends v with the given status. Write failures are ignored
// for the same reason as in writeError.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
