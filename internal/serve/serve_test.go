package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/model"
	"mclegal/internal/seg"
	"mclegal/internal/stage"
)

// testDesign is a small benchmark every endpoint test shares; pipeline
// runs on it finish in tens of milliseconds.
func testDesign(t testing.TB) *model.Design {
	t.Helper()
	return bmark.Generate(bmark.Params{
		Name: "serve-test", Seed: 11, Counts: [4]int{60, 8, 2, 1},
		Density: 0.5, NumFences: 1, FenceFrac: 0.5, NetFrac: 0.5,
	})
}

func designBytes(t testing.TB, d *model.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bmark.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// decodeError decodes and sanity-checks a typed error response: JSON
// envelope, a kind from the taxonomy, and a status code matching it.
func decodeError(t *testing.T, resp *http.Response) *Error {
	t.Helper()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v", err)
	}
	if body.Error == nil || body.Error.Kind == "" {
		t.Fatalf("error body lacks a kind: %+v", body)
	}
	if got := body.Error.Kind.HTTPStatus(); got != resp.StatusCode {
		t.Errorf("kind %q maps to %d but response status is %d", body.Error.Kind, got, resp.StatusCode)
	}
	return body.Error
}

func auditBytes(t *testing.T, data []byte) []string {
	t.Helper()
	d, err := bmark.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("response body is not a readable design: %v", err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, v := range eval.Audit(d, grid) {
		out = append(out, v.String())
	}
	return out
}

func TestHealthzAndReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Kind != KindDraining {
		t.Errorf("draining readyz kind = %q, want %q", e.Kind, KindDraining)
	}
	// Liveness is not readiness: a draining server is still alive.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", resp2.StatusCode)
	}
}

func TestDesignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := designBytes(t, testDesign(t))

	put, err := http.Post(ts.URL+"/designs/alpha", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var info designInfo
	if err := json.NewDecoder(put.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	put.Body.Close()
	if put.StatusCode != http.StatusCreated {
		t.Fatalf("PUT design = %d, want 201", put.StatusCode)
	}
	if info.Name != "alpha" || info.Movables == 0 {
		t.Errorf("design info = %+v", info)
	}

	list, err := http.Get(ts.URL + "/designs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []designInfo
	if err := json.NewDecoder(list.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if len(infos) != 1 || infos[0].Name != "alpha" {
		t.Errorf("design list = %+v, want [alpha]", infos)
	}

	get, err := http.Get(ts.URL + "/designs/alpha")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if !bytes.Equal(got, data) {
		t.Error("resident design does not round-trip byte-identically")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/designs/alpha", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE = %d, want 204", del.StatusCode)
	}

	miss, err := http.Get(ts.URL + "/designs/alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer miss.Body.Close()
	if e := decodeError(t, miss); e.Kind != KindNotFound {
		t.Errorf("deleted design kind = %q, want %q", e.Kind, KindNotFound)
	}
}

func TestLegalizeBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	data := designBytes(t, testDesign(t))

	resp, err := http.Post(ts.URL+"/legalize", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legalize = %d: %s", resp.StatusCode, body)
	}
	if st := resp.Header.Get("X-Mclegal-Status"); st != "legal" {
		t.Errorf("X-Mclegal-Status = %q, want legal", st)
	}
	if resp.Header.Get("X-Mclegal-Score") == "" {
		t.Error("missing X-Mclegal-Score header")
	}
	if vs := auditBytes(t, body); len(vs) > 0 {
		t.Errorf("legalized response is not legal: %v", vs)
	}
}

func TestLegalizeResidentLeavesResidentUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	data := designBytes(t, testDesign(t))
	resp, err := http.Post(ts.URL+"/designs/alpha", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	leg, err := http.Post(ts.URL+"/legalize/alpha", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(leg.Body)
	leg.Body.Close()
	if leg.StatusCode != http.StatusOK {
		t.Fatalf("legalize/alpha = %d: %s", leg.StatusCode, body)
	}
	if vs := auditBytes(t, body); len(vs) > 0 {
		t.Errorf("legalized response is not legal: %v", vs)
	}

	// The resident copy must still be the original GP placement: runs
	// work on private clones.
	get, err := http.Get(ts.URL + "/designs/alpha")
	if err != nil {
		t.Fatal(err)
	}
	resident, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if !bytes.Equal(resident, data) {
		t.Error("legalizing a resident design mutated the resident copy")
	}
}

func TestLegalizeUnknownDesign(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/legalize/ghost", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if e := decodeError(t, resp); e.Kind != KindNotFound {
		t.Errorf("kind = %q, want %q", e.Kind, KindNotFound)
	}
}

func TestBadRunParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := designBytes(t, testDesign(t))
	for _, query := range []string{
		"?timeout=banana", "?timeout=-3s", "?recovery=yolo",
		"?workers=-1", "?shards=maybe", "?verify=perhaps",
	} {
		resp, err := http.Post(ts.URL+"/legalize"+query, "text/plain", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		e := decodeError(t, resp)
		resp.Body.Close()
		if e.Kind != KindBadRequest {
			t.Errorf("%s: kind = %q, want %q", query, e.Kind, KindBadRequest)
		}
	}
}

func TestParseAndLimitErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: bmark.Limits{MaxBytes: 256}})
	resp, err := http.Post(ts.URL+"/legalize", "text/plain", strings.NewReader("not a design"))
	if err != nil {
		t.Fatal(err)
	}
	e := decodeError(t, resp)
	resp.Body.Close()
	if e.Kind != KindParse {
		t.Errorf("garbage body kind = %q, want %q", e.Kind, KindParse)
	}

	big := designBytes(t, testDesign(t)) // far beyond 256 bytes
	resp2, err := http.Post(ts.URL+"/designs/big", "text/plain", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if e := decodeError(t, resp2); e.Kind != KindLimit {
		t.Errorf("oversized body kind = %q, want %q", e.Kind, KindLimit)
	}
}

func TestOverloadRefusesImmediately(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Occupy the only admission slot directly; the next run request
	// must be refused now, not queued.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	data := designBytes(t, testDesign(t))
	resp, err := http.Post(ts.URL+"/legalize", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	e := decodeError(t, resp)
	if e.Kind != KindOverload {
		t.Fatalf("kind = %q, want %q", e.Kind, KindOverload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if e.RetryAfterSeconds <= 0 {
		t.Error("error body lacks retry_after_seconds")
	}
}

func TestStrictGateFailureOnWire(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		FaultHook: func(r *http.Request) *faults.Injector {
			return faults.New().Arm(faults.StageError(stage.NameMGL))
		},
	})
	data := designBytes(t, testDesign(t))
	resp, err := http.Post(ts.URL+"/legalize?recovery=strict", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	e := decodeError(t, resp)
	if e.Kind != KindGate {
		t.Fatalf("kind = %q, want %q", e.Kind, KindGate)
	}
	if e.Stage != stage.NameMGL {
		t.Errorf("stage = %q, want %q", e.Stage, stage.NameMGL)
	}
	if len(e.Gates) == 0 {
		t.Error("gate failure carries no gate reports")
	}
}

func TestFallbackRecoveryOnWire(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		FaultHook: func(r *http.Request) *faults.Injector {
			return faults.New().Arm(faults.StageError(stage.NameMGL))
		},
	})
	data := designBytes(t, testDesign(t))
	resp, err := http.Post(ts.URL+"/legalize", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback run = %d: %s", resp.StatusCode, body)
	}
	if st := resp.Header.Get("X-Mclegal-Status"); st != "recovered" {
		t.Errorf("X-Mclegal-Status = %q, want recovered", st)
	}
	if g := resp.Header.Get("X-Mclegal-Gates"); g == "0" || g == "" {
		t.Errorf("X-Mclegal-Gates = %q, want >= 1", g)
	}
	if vs := auditBytes(t, body); len(vs) > 0 {
		t.Errorf("recovered response is not legal: %v", vs)
	}
}

func TestDeadlineBudgetExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	data := designBytes(t, testDesign(t))
	resp, err := http.Post(ts.URL+"/legalize?timeout=1ns", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	e := decodeError(t, resp)
	if e.Kind != KindDeadline {
		t.Fatalf("kind = %q, want %q", e.Kind, KindDeadline)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
	if e.Status == "" {
		t.Error("deadline error lacks the typed partial-run status")
	}
}

// A client cancelling its own request is classified as KindCanceled —
// distinct from both deadline expiry and server drain. The handler is
// driven directly so the already-cancelled request context is
// observable server-side.
func TestClientCancelClassification(t *testing.T) {
	s := New(Config{Workers: 1})
	data := designBytes(t, testDesign(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/legalize", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", resp.StatusCode, statusClientClosedRequest, rec.Body.String())
	}
	if e := decodeError(t, resp); e.Kind != KindCanceled {
		t.Errorf("kind = %q, want %q", e.Kind, KindCanceled)
	}
}

// A panic in a handler is contained to its own request: the client
// gets a typed 500 and the server keeps serving.
func TestPanicContainment(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		FaultHook: func(r *http.Request) *faults.Injector {
			if r.URL.Query().Get("boom") != "" {
				panic("chaos hook detonated")
			}
			return nil
		},
	})
	data := designBytes(t, testDesign(t))

	resp, err := http.Post(ts.URL+"/legalize?boom=1", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	e := decodeError(t, resp)
	resp.Body.Close()
	if e.Kind != KindPanic {
		t.Fatalf("kind = %q, want %q", e.Kind, KindPanic)
	}

	resp2, err := http.Post(ts.URL+"/legalize", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("request after a contained panic = %d, want 200", resp2.StatusCode)
	}
}

func TestEvaluateAndAudit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	data := designBytes(t, testDesign(t))

	leg, err := http.Post(ts.URL+"/legalize", "text/plain", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	legal, _ := io.ReadAll(leg.Body)
	leg.Body.Close()
	if leg.StatusCode != http.StatusOK {
		t.Fatalf("legalize = %d", leg.StatusCode)
	}

	ev, err := http.Post(ts.URL+"/evaluate", "text/plain", bytes.NewReader(legal))
	if err != nil {
		t.Fatal(err)
	}
	var evr evaluateResponse
	if err := json.NewDecoder(ev.Body).Decode(&evr); err != nil {
		t.Fatal(err)
	}
	ev.Body.Close()
	if ev.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d", ev.StatusCode)
	}
	if evr.Cells == 0 || evr.HPWLAfter == 0 {
		t.Errorf("evaluate response looks empty: %+v", evr)
	}

	au, err := http.Post(ts.URL+"/audit", "text/plain", bytes.NewReader(legal))
	if err != nil {
		t.Fatal(err)
	}
	var aur auditResponse
	if err := json.NewDecoder(au.Body).Decode(&aur); err != nil {
		t.Fatal(err)
	}
	au.Body.Close()
	if !aur.Legal || aur.Violations != 0 {
		t.Errorf("audit of a legalized design = %+v, want legal", aur)
	}
	if aur.Legal != (aur.Violations == 0) {
		t.Errorf("audit response is self-inconsistent: %+v", aur)
	}
}
