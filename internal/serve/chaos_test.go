package serve

// The seeded chaos suite: concurrent clients fire randomized request
// mixes — injected stage errors, worker panics, deadline expiries,
// mid-request cancels, sharded and unsharded runs — at one server and
// verify the serving contract holds under all of it:
//
//   - every request ends with either a legal placement or a typed
//     error from the wire taxonomy (never a hung or malformed
//     response);
//   - the server leaks no goroutines;
//   - identical requests produce byte-identical placements, faults and
//     shard concurrency notwithstanding.
//
// Runs under -race via `make check` (and the CI chaos job at
// GOMAXPROCS 1 and 4).

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/faults"
	"mclegal/internal/stage"
	"mclegal/internal/testutil"
)

// chaosPoints maps the ?chaos= wire names the test hook understands to
// the pipeline's injection points. chaosPointNames is its sorted key
// list, so seeded point picks are reproducible.
var chaosPoints = map[string]faults.Point{
	"mgl-error":         faults.StageError(stage.NameMGL),
	"maxdisp-error":     faults.StageError(stage.NameMaxDisp),
	"refine-error":      faults.StageError(stage.NameRefine),
	"mgl-illegal":       faults.IllegalMove(stage.NameMGL),
	"maxdisp-illegal":   faults.IllegalMove(stage.NameMaxDisp),
	"refine-illegal":    faults.IllegalMove(stage.NameRefine),
	"worker-panic":      faults.MGLWorkerPanic,
	"insert-outside":    faults.MGLInsertOutside,
	"refine-infeasible": faults.RefineInfeasible,
	"matching-fail":     faults.MatchingFail,
}

var chaosPointNames = []string{
	"insert-outside", "matching-fail", "maxdisp-error", "maxdisp-illegal",
	"mgl-error", "mgl-illegal", "refine-error", "refine-illegal",
	"refine-infeasible", "worker-panic",
}

// chaosHook is the Config.FaultHook of the chaos servers: it arms the
// injection points the request's ?chaos= parameter names.
func chaosHook(r *http.Request) *faults.Injector {
	spec := r.URL.Query().Get("chaos")
	if spec == "" {
		return nil
	}
	inj := faults.New()
	for _, name := range strings.Split(spec, ",") {
		inj.Arm(chaosPoints[name])
	}
	return inj
}

// verifyChaosResponse checks the serving contract on one response:
// a 200 carries a parseable design that audits clean whenever the run
// status claims legality; anything else is a typed error whose kind
// matches its HTTP status.
func verifyChaosResponse(t *testing.T, resp *http.Response, body []byte) {
	t.Helper()
	if resp.StatusCode == http.StatusOK {
		status := resp.Header.Get("X-Mclegal-Status")
		switch status {
		case "legal", "recovered", "partial":
		default:
			t.Errorf("200 with unknown X-Mclegal-Status %q", status)
		}
		if status != "partial" {
			if vs := auditBytes(t, body); len(vs) > 0 {
				t.Errorf("200/%s response is not legal: %v", status, vs)
			}
		}
		return
	}
	rc := &http.Response{StatusCode: resp.StatusCode, Body: readCloser(body)}
	decodeError(t, rc)
}

func readCloser(b []byte) *nopCloser { return &nopCloser{Reader: bytes.NewReader(b)} }

type nopCloser struct{ *bytes.Reader }

func (*nopCloser) Close() error { return nil }

// chaosRequest fires one seeded random request at the handler and
// verifies the contract on whatever comes back.
func chaosRequest(t *testing.T, h http.Handler, rng *rand.Rand, data []byte) {
	q := url.Values{}
	// Fault mix: none, one, or a pair of injection points.
	switch rng.Intn(3) {
	case 1:
		q.Set("chaos", chaosPointNames[rng.Intn(len(chaosPointNames))])
	case 2:
		a := chaosPointNames[rng.Intn(len(chaosPointNames))]
		b := chaosPointNames[rng.Intn(len(chaosPointNames))]
		q.Set("chaos", a+","+b)
	}
	q.Set("recovery", []string{"fallback", "besteffort", "strict"}[rng.Intn(3)])
	if rng.Intn(2) == 1 {
		q.Set("shards", "2")
	}
	if rng.Intn(8) == 0 {
		q.Set("timeout", "1ns") // guaranteed deadline expiry
	}

	path := "/legalize"
	var body *bytes.Reader
	if rng.Intn(2) == 1 {
		path = "/legalize/resident"
		body = bytes.NewReader(nil)
	} else {
		body = bytes.NewReader(data)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if rng.Intn(6) == 0 {
		// Mid-request cancel: the run is a few ms in when this fires.
		timer := time.AfterFunc(time.Duration(rng.Intn(8))*time.Millisecond, cancel)
		defer timer.Stop()
	}

	req := httptest.NewRequest(http.MethodPost, path+"?"+q.Encode(), body).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	verifyChaosResponse(t, rec.Result(), rec.Body.Bytes())
}

// TestChaosSuite is the main storm: concurrent seeded clients, every
// failure mode at once, followed by a drain and a goroutine-leak check.
func TestChaosSuite(t *testing.T) {
	before := testutil.Count()
	s := New(Config{Workers: 1, MaxInflight: 16, FaultHook: chaosHook})
	s.AddDesign("resident", testDesign(t))
	h := s.Handler()
	data := designBytes(t, testDesign(t))

	const clients, perClient = 4, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4218 + 1000*c)))
			for i := 0; i < perClient; i++ {
				chaosRequest(t, h, rng, data)
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain after the storm: %v", err)
	}
	testutil.CheckNoLeaks(t, before)
}

// Identical requests must produce byte-identical placements — across
// repeats, across concurrent execution, with faults armed, both
// unsharded and sharded.
func TestChaosIdenticalRequestsByteIdentical(t *testing.T) {
	for _, shards := range []string{"0", "2"} {
		t.Run("shards="+shards, func(t *testing.T) {
			s := New(Config{Workers: 1, MaxInflight: 16, FaultHook: chaosHook})
			h := s.Handler()
			data := designBytes(t, testDesign(t))
			target := "/legalize?shards=" + shards + "&chaos=worker-panic,refine-infeasible"

			const n = 6
			results := make([][]byte, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(data))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("request %d = %d: %s", i, rec.Code, rec.Body.String())
						return
					}
					results[i] = rec.Body.Bytes()
				}(i)
			}
			wg.Wait()
			for i := 1; i < n; i++ {
				if !bytes.Equal(results[0], results[i]) {
					t.Fatalf("request %d produced a different placement than request 0", i)
				}
			}
		})
	}
}

// Draining mid-run: in-flight requests either finish legal or get the
// typed draining error when the grace expires; later requests are
// refused immediately; the server winds down without leaking.
func TestChaosDrainCancelsInflight(t *testing.T) {
	before := testutil.Count()
	s := New(Config{Workers: 1, MaxInflight: 4})
	h := s.Handler()
	big := bmark.Generate(bmark.Params{
		Name: "drain-chaos", Seed: 99, Counts: [4]int{2500, 250, 40, 10},
		Density: 0.6, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.3,
	})
	data := designBytes(t, big)

	const n = 3
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		recs[i] = httptest.NewRecorder()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/legalize?timeout=1m", bytes.NewReader(data))
			h.ServeHTTP(recs[i], req)
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the runs get in flight

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_ = s.Drain(ctx) // forced drain is expected; clean is fine too
	wg.Wait()

	for i, rec := range recs {
		resp := rec.Result()
		if resp.StatusCode == http.StatusOK {
			continue // finished inside the grace
		}
		e := decodeError(t, &http.Response{StatusCode: resp.StatusCode, Body: readCloser(rec.Body.Bytes())})
		if e.Kind != KindDraining {
			t.Errorf("in-flight request %d ended %d/%q, want 200 or draining", i, resp.StatusCode, e.Kind)
		}
		// A request cut down mid-run carries the typed partial-run
		// status; one refused at admission (it lost the race to the
		// draining flag) legitimately has none.
		if strings.Contains(e.Message, "mid-run") && e.Status == "" {
			t.Errorf("in-flight request %d: drain error lacks the typed partial-run status", i)
		}
	}

	req := httptest.NewRequest(http.MethodPost, "/legalize", bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request = %d, want 503", rec.Code)
	}
	testutil.CheckNoLeaks(t, before)
}
