package eval

import (
	"math"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func design() *model.Design {
	return &model.Design{
		Name: "e",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 60, NumRows: 8},
		Types: []model.CellType{
			{Name: "S", Width: 2, Height: 1},
			{Name: "D", Width: 3, Height: 2},
		},
	}
}

func add(d *model.Design, ti model.CellTypeID, gx, gy, x, y int) model.CellID {
	d.Cells = append(d.Cells, model.Cell{Name: "c", Type: ti, GX: gx, GY: gy, X: x, Y: y})
	return model.CellID(len(d.Cells) - 1)
}

func grid(t *testing.T, d *model.Design) *seg.Grid {
	t.Helper()
	g, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAuditClean(t *testing.T) {
	d := design()
	add(d, 0, 5, 1, 5, 1)
	add(d, 1, 10, 2, 10, 2)
	if v := Audit(d, grid(t, d)); len(v) != 0 {
		t.Fatalf("clean design flagged: %v", v)
	}
}

func TestAuditOverlap(t *testing.T) {
	d := design()
	add(d, 0, 5, 1, 5, 1)
	add(d, 0, 6, 1, 6, 1) // overlaps [5,7)
	v := Audit(d, grid(t, d))
	if len(v) != 1 || v[0].Kind != "overlap" {
		t.Fatalf("want 1 overlap, got %v", v)
	}
}

func TestAuditOverlapReportedOnce(t *testing.T) {
	d := design()
	add(d, 1, 5, 2, 5, 2) // rows 2,3
	add(d, 1, 6, 2, 6, 2) // overlaps in both rows: one report
	v := Audit(d, grid(t, d))
	n := 0
	for _, x := range v {
		if x.Kind == "overlap" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("overlap pair reported %d times", n)
	}
}

func TestAuditParity(t *testing.T) {
	d := design()
	add(d, 1, 5, 3, 5, 3) // double height on odd row
	v := Audit(d, grid(t, d))
	if len(v) != 1 || v[0].Kind != "parity" {
		t.Fatalf("want parity violation, got %v", v)
	}
}

func TestAuditOutOfCore(t *testing.T) {
	d := design()
	add(d, 0, 59, 1, 59, 1) // width 2 at 59: sticks out of 60 sites
	v := Audit(d, grid(t, d))
	if len(v) != 1 || v[0].Kind != "out-of-core" {
		t.Fatalf("want out-of-core, got %v", v)
	}
}

func TestAuditFence(t *testing.T) {
	d := design()
	d.Fences = []model.Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(20, 0, 10, 4)}}}
	id := add(d, 0, 5, 1, 5, 1)
	d.Cells[id].Fence = 1 // assigned to the fence but placed outside
	v := Audit(d, grid(t, d))
	if len(v) != 1 || v[0].Kind != "fence" {
		t.Fatalf("want fence violation, got %v", v)
	}
	// Default cell inside the fence is also flagged.
	d2 := design()
	d2.Fences = d.Fences
	add(d2, 0, 22, 1, 22, 1)
	v = Audit(d2, grid(t, d2))
	if len(v) != 1 || v[0].Kind != "fence" {
		t.Fatalf("default-in-fence not flagged: %v", v)
	}
}

func TestAuditSkipsFixed(t *testing.T) {
	d := design()
	id := add(d, 0, 100, 50, 100, 50) // far outside, but fixed
	d.Cells[id].Fixed = true
	if v := Audit(d, grid(t, d)); len(v) != 0 {
		t.Fatalf("fixed cell flagged: %v", v)
	}
}

func TestMeasureEq2(t *testing.T) {
	d := design()
	// Two single-height cells displaced 0 and 2 rows; one double
	// displaced 1 row. S_am = ((0+2)/2 + 1/1) / 2 = 1.0.
	add(d, 0, 5, 1, 5, 1)
	add(d, 0, 5, 1, 5, 3)
	add(d, 1, 10, 2, 10, 3)
	m := Measure(d)
	if m.AvgDisp != 1.0 {
		t.Errorf("AvgDisp = %v, want 1.0", m.AvgDisp)
	}
	if m.MaxDisp != 2.0 {
		t.Errorf("MaxDisp = %v, want 2.0", m.MaxDisp)
	}
	if m.MovedCells != 2 {
		t.Errorf("MovedCells = %v", m.MovedCells)
	}
	// 2 rows + 1 row = 3 rows = 240 DBU = 24 sites.
	if m.TotalDispSites != 24 {
		t.Errorf("TotalDispSites = %v", m.TotalDispSites)
	}
}

func TestMeasureMixedUnits(t *testing.T) {
	d := design()
	add(d, 0, 5, 1, 9, 1) // 4 sites = 40 DBU = 0.5 rows
	m := Measure(d)
	if m.AvgDisp != 0.5 || m.MaxDisp != 0.5 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestHPWL(t *testing.T) {
	d := design()
	a := add(d, 0, 0, 0, 2, 1)
	b := add(d, 0, 0, 0, 10, 3)
	d.Nets = []model.Net{
		{Name: "n", Pins: []model.NetPin{{Cell: a, DX: 5, DY: 5}, {Cell: b, DX: 0, DY: 0}}},
		{Name: "single", Pins: []model.NetPin{{Cell: a}}}, // ignored
	}
	// a pin: (25, 85); b pin: (100, 240). HPWL = 75 + 155 = 230.
	if got := HPWL(d); got != 230 {
		t.Errorf("HPWL = %d, want 230", got)
	}
}

func TestScore(t *testing.T) {
	in := ScoreInput{
		Metrics:    Metrics{AvgDisp: 1.0, MaxDisp: 100},
		HPWLBefore: 1000, HPWLAfter: 1100,
		PinViolations: 5, EdgeViolations: 5, Cells: 100,
	}
	// (1 + 0.1 + 0.1) * (1 + 1) * 1 = 2.4
	if got := Score(in); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("Score = %v, want 2.4", got)
	}
	// HPWL improvement is not rewarded below zero.
	in.HPWLAfter = 900
	if got := Score(in); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("Score with HPWL gain = %v, want 2.2", got)
	}
	// Degenerate inputs do not divide by zero.
	if got := Score(ScoreInput{}); got != 0 {
		t.Errorf("zero score = %v", got)
	}
}
