package eval

import (
	"testing"

	"mclegal/internal/model"
)

// Cells exactly on the die boundary are legal; one site or row past it
// is not.
func TestAuditDieBoundary(t *testing.T) {
	d := design()
	add(d, 0, 0, 0, 0, 0)   // flush with the left edge, bottom row
	add(d, 0, 58, 0, 58, 0) // width 2 ending exactly at site 60
	add(d, 1, 10, 6, 10, 6) // height 2 ending exactly at row 8
	if v := Audit(d, grid(t, d)); len(v) != 0 {
		t.Fatalf("boundary-flush cells flagged: %v", v)
	}

	d2 := design()
	add(d2, 1, 10, 7, 10, 7) // height 2 starting on the top row
	v := Audit(d2, grid(t, d2))
	if len(v) != 1 || v[0].Kind != "out-of-core" {
		t.Fatalf("row overflow not flagged: %v", v)
	}
	d3 := design()
	add(d3, 0, -1, 0, -1, 0) // one site left of the core
	v = Audit(d3, grid(t, d3))
	if len(v) != 1 || v[0].Kind != "out-of-core" {
		t.Fatalf("negative x not flagged: %v", v)
	}
}

// A zero-area cell type is rejected by Design.Validate (the pipeline
// never audits one), and a direct Audit call must not panic on it or
// invent overlaps with real cells at the same site.
func TestAuditZeroAreaCell(t *testing.T) {
	d := design()
	d.Types = append(d.Types, model.CellType{Name: "Z", Width: 0, Height: 1})
	add(d, 0, 5, 1, 5, 1)
	add(d, 2, 5, 1, 5, 1) // zero-width, same site as the real cell
	if err := d.Validate(); err == nil {
		t.Error("zero-area cell type passed Validate")
	}
	for _, v := range Audit(d, grid(t, d)) {
		if v.Kind == "overlap" {
			t.Errorf("zero-area cell produced an overlap: %v", v)
		}
	}
}

// P/G parity for taller cells: odd heights go anywhere, even heights
// only on rows with matching rail parity.
func TestAuditParityTallCells(t *testing.T) {
	d := design()
	d.Types = append(d.Types,
		model.CellType{Name: "T3", Width: 2, Height: 3},
		model.CellType{Name: "Q4", Width: 2, Height: 4},
	)
	add(d, 2, 5, 3, 5, 3)   // height 3 on an odd row: any parity is fine
	add(d, 3, 20, 2, 20, 2) // height 4 on an even row: aligned
	if v := Audit(d, grid(t, d)); len(v) != 0 {
		t.Fatalf("parity-legal tall cells flagged: %v", v)
	}
	d2 := design()
	d2.Types = d.Types
	add(d2, 3, 20, 1, 20, 1) // height 4 on an odd row
	v := Audit(d2, grid(t, d2))
	if len(v) != 1 || v[0].Kind != "parity" {
		t.Fatalf("misaligned height-4 cell not flagged: %v", v)
	}
}

// Two movable cells stacked on the same position are exactly the shape
// the pipeline's illegal-move injection produces; the audit must report
// the pair once with both cells named.
func TestAuditStackedPair(t *testing.T) {
	d := design()
	a := add(d, 0, 5, 1, 5, 1)
	b := add(d, 0, 5, 1, 5, 1)
	v := Audit(d, grid(t, d))
	if len(v) != 1 || v[0].Kind != "overlap" {
		t.Fatalf("stacked pair: %v", v)
	}
	if v[0].Cell != a || v[0].Other != b {
		t.Errorf("pair not named: %+v", v[0])
	}
}
