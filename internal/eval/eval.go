// Package eval measures placements: the hard-legality audit (overlaps,
// site/row alignment, fences, P/G parity), the contest displacement
// metrics of paper Eq. (1)-(2), HPWL, and the ICCAD 2017 score function
// of Eq. (10).
package eval

import (
	"fmt"
	"math"
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Violation is one hard-legality failure found by Audit.
type Violation struct {
	Cell  model.CellID
	Other model.CellID // -1 unless an overlap
	Kind  string
	Msg   string
}

func (v Violation) String() string { return fmt.Sprintf("%s: cell %d: %s", v.Kind, v.Cell, v.Msg) }

// Audit checks hard legality of every movable cell: inside the core, on
// legal rows (P/G parity), fully inside fence-consistent segments, and
// overlap-free. It returns all violations found (empty = legal).
func Audit(d *model.Design, grid *seg.Grid) []Violation {
	var out []Violation
	add := func(c model.CellID, o model.CellID, kind, format string, args ...any) {
		out = append(out, Violation{Cell: c, Other: o, Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
	core := d.Tech.CoreRect()
	type rowEntry struct {
		id model.CellID
		x  geom.Interval
	}
	rows := make([][]rowEntry, d.Tech.NumRows)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		id := model.CellID(i)
		ct := &d.Types[c.Type]
		r := d.CellRect(id)
		if !core.Contains(r) {
			add(id, -1, "out-of-core", "rect %v outside core %v", r, core)
			continue
		}
		if !d.Tech.RowAllowed(ct.Height, c.Y) {
			add(id, -1, "parity", "height %d cell on row %d violates P/G alignment", ct.Height, c.Y)
		}
		if !grid.SpanOK(c.Fence, c.X, c.Y, ct.Width, ct.Height) {
			add(id, -1, "fence", "rect %v not inside fence-%d segments", r, c.Fence)
		}
		for y := r.YLo; y < r.YHi; y++ {
			rows[y] = append(rows[y], rowEntry{id: id, x: r.XIv()})
		}
	}
	for y := range rows {
		es := rows[y]
		sort.Slice(es, func(a, b int) bool { return es[a].x.Lo < es[b].x.Lo })
		for k := 1; k < len(es); k++ {
			if es[k-1].x.Overlaps(es[k].x) {
				// Report each overlapping pair once (on the bottom-most
				// shared row).
				a, b := es[k-1].id, es[k].id
				ra, rb := d.CellRect(a), d.CellRect(b)
				if y == max(ra.YLo, rb.YLo) {
					add(a, b, "overlap", "cells %d%v and %d%v overlap in row %d", a, ra, b, rb, y)
				}
			}
		}
	}
	return out
}

// Metrics aggregates the paper's displacement measures for a design.
type Metrics struct {
	// AvgDisp is S_am of Eq. (2): the mean per-height-class average
	// displacement, in row-height units.
	AvgDisp float64
	// MaxDisp is the largest cell displacement in row-height units.
	MaxDisp float64
	// TotalDispSites is the summed displacement in site-width units
	// (the Table 2 metric).
	TotalDispSites float64
	// TotalDispDBU is the summed displacement in DBU.
	TotalDispDBU int64
	// MovedCells counts cells with non-zero displacement.
	MovedCells int
}

// Measure computes displacement metrics from GP positions.
func Measure(d *model.Design) Metrics {
	var m Metrics
	maxH := d.MaxHeight()
	sumByH := make([]float64, maxH+1)
	cntByH := make([]int, maxH+1)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		h := d.Types[c.Type].Height
		dbu := d.DispDBU(model.CellID(i))
		rows := float64(dbu) / float64(d.Tech.RowH)
		sumByH[h] += rows
		cntByH[h]++
		if rows > m.MaxDisp {
			m.MaxDisp = rows
		}
		m.TotalDispDBU += dbu
		if dbu != 0 {
			m.MovedCells++
		}
	}
	classes := 0
	var acc float64
	for h := 1; h <= maxH; h++ {
		if cntByH[h] == 0 {
			continue
		}
		classes++
		acc += sumByH[h] / float64(cntByH[h])
	}
	if classes > 0 {
		m.AvgDisp = acc / float64(classes)
	}
	m.TotalDispSites = float64(m.TotalDispDBU) / float64(d.Tech.SiteW)
	return m
}

// HPWL returns the total half-perimeter wirelength of all nets in DBU,
// using current cell positions plus pin offsets.
func HPWL(d *model.Design) int64 {
	var total int64
	for n := range d.Nets {
		pins := d.Nets[n].Pins
		if len(pins) < 2 {
			continue
		}
		xmin, xmax := int64(math.MaxInt64), int64(math.MinInt64)
		ymin, ymax := xmin, xmax
		for _, p := range pins {
			c := &d.Cells[p.Cell]
			x := int64(c.X)*int64(d.Tech.SiteW) + int64(p.DX)
			y := int64(c.Y)*int64(d.Tech.RowH) + int64(p.DY)
			xmin, xmax = min(xmin, x), max(xmax, x)
			ymin, ymax = min(ymin, y), max(ymax, y)
		}
		total += (xmax - xmin) + (ymax - ymin)
	}
	return total
}

// ScoreInput carries everything Eq. (10) needs.
type ScoreInput struct {
	Metrics Metrics
	// HPWLBefore/After are the HPWL at GP and after legalization.
	HPWLBefore, HPWLAfter int64
	// PinViolations is N_p (pin access + pin short), EdgeViolations is
	// N_e.
	PinViolations, EdgeViolations int
	// Cells is m, the number of movable cells.
	Cells int
}

// Score evaluates the ICCAD 2017 contest score of Eq. (10); lower is
// better. Delta is fixed to 100 as in the contest.
func Score(in ScoreInput) float64 {
	const delta = 100.0
	sHpwl := 0.0
	if in.HPWLBefore > 0 {
		sHpwl = float64(in.HPWLAfter-in.HPWLBefore) / float64(in.HPWLBefore)
		if sHpwl < 0 {
			sHpwl = 0
		}
	}
	viol := 0.0
	if in.Cells > 0 {
		viol = float64(in.PinViolations+in.EdgeViolations) / float64(in.Cells)
	}
	return (1 + sHpwl + viol) * (1 + in.Metrics.MaxDisp/delta) * in.Metrics.AvgDisp
}
