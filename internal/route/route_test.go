package route

import (
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// railTech: rows 80 DBU tall, horizontal M2 rails (half-width 4) on
// every 2nd row boundary, vertical M3 stripes every 20 sites (width 12
// DBU) starting at site 10.
func railTech() model.Tech {
	return model.Tech{
		SiteW: 10, RowH: 80, NumSites: 100, NumRows: 16,
		HRailLayer: model.LayerM2, HRailHalfW: 4, HRailPeriod: 2,
		VRailLayer: model.LayerM3, VRailPitch: 20, VRailW: 12, VRailOffset: 10,
	}
}

func railDesign() *model.Design {
	return &model.Design{
		Name: "r",
		Tech: railTech(),
		Types: []model.CellType{
			{
				Name: "CLEAN", Width: 4, Height: 1,
				Pins: []model.PinShape{
					// Mid-cell M1 pin, nowhere near rails.
					{Name: "A", Layer: model.LayerM1, Box: geom.RectWH(12, 30, 8, 10)},
				},
			},
			{
				Name: "LOWPIN", Width: 4, Height: 1,
				Pins: []model.PinShape{
					// M2 pin hugging the cell bottom: shorts with a
					// horizontal M2 rail when the bottom row sits on a
					// rail boundary (even rows).
					{Name: "B", Layer: model.LayerM2, Box: geom.RectWH(12, 0, 8, 6)},
				},
			},
			{
				Name: "M1LOW", Width: 4, Height: 1,
				Pins: []model.PinShape{
					// M1 pin at the bottom: *access* problem under the
					// M2 rail (Figure 1 left).
					{Name: "C", Layer: model.LayerM1, Box: geom.RectWH(12, 0, 8, 6)},
				},
			},
			{
				Name: "M2WIDE", Width: 4, Height: 1,
				Pins: []model.PinShape{
					// M2 pin in the middle of the cell: access problem
					// under M3 vertical stripes, x-dependent.
					{Name: "D", Layer: model.LayerM2, Box: geom.RectWH(0, 30, 40, 10)},
				},
			},
		},
	}
}

func TestHitsHRail(t *testing.T) {
	c := NewChecker(railDesign())
	// Rails at y = 0, 160, 320, ... covering [-4, 4), [156, 164)...
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 6, true},     // bottom pin on rail boundary
		{10, 100, false}, // between rails
		{150, 170, true}, // crosses rail at 160
		{163, 170, true}, // clips rail tail
		{164, 170, false},
		{80, 90, false}, // odd row boundary has no rail
		{5, 5, false},   // empty interval
	}
	for _, tc := range cases {
		if got := c.hitsHRail(tc.lo, tc.hi); got != tc.want {
			t.Errorf("hitsHRail(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestHitsVRail(t *testing.T) {
	c := NewChecker(railDesign())
	// Stripes at x = 100, 300, 500, ... each 12 DBU wide.
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{100, 110, true},
		{90, 101, true},
		{111, 120, true},
		{112, 120, false},
		{0, 99, false}, // before the first stripe
		{113, 299, false},
		{250, 700, true},
	}
	for _, tc := range cases {
		if got := c.hitsVRail(tc.lo, tc.hi); got != tc.want {
			t.Errorf("hitsVRail(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

// Figure 1 reproduction: the taxonomy of pin short vs pin access.
func TestFigure1PinViolationTaxonomy(t *testing.T) {
	d := railDesign()
	c := NewChecker(d)
	// M2 pin over M2 rail: SHORT (Figure 1 right).
	st := c.CheckPin(1, 0, 0, 0) // LOWPIN at row 0 (rail boundary)
	if !st.Short || st.Access {
		t.Errorf("M2 pin on M2 rail: %+v, want short only", st)
	}
	// M1 pin under M2 rail: ACCESS (Figure 1 left).
	st = c.CheckPin(2, 0, 0, 0)
	if st.Short || !st.Access {
		t.Errorf("M1 pin under M2 rail: %+v, want access only", st)
	}
	// Same cells on an odd row: clean.
	if st := c.CheckPin(1, 0, 0, 1); st.Short || st.Access {
		t.Errorf("LOWPIN on odd row should be clean: %+v", st)
	}
	// M2 pin crossing a vertical M3 stripe: ACCESS, x-dependent.
	st = c.CheckPin(3, 0, 8, 1) // cell sites 8..12, pin spans 80..120 DBU: hits stripe at 100
	if !st.Access {
		t.Errorf("M2 pin under M3 stripe: %+v, want access", st)
	}
	if st := c.CheckPin(3, 0, 12, 1); st.Access {
		t.Errorf("M2WIDE at x=12 spans 120..160, stripe at 100..112 missed? %+v", st)
	}
}

func TestIOPinViolations(t *testing.T) {
	d := railDesign()
	d.IOPins = []model.IOPin{
		{Name: "io2", Layer: model.LayerM2, Box: geom.RectWH(120, 110, 20, 20)},
	}
	c := NewChecker(d)
	// CLEAN's M1 pin at cell (11,1): abs box [122,130)x[110,120):
	// overlaps the M2 IO pin one layer up -> access.
	st := c.CheckPin(0, 0, 11, 1)
	if st.Short || !st.Access {
		t.Errorf("M1 pin under M2 IO pin: %+v", st)
	}
	// A LOWPIN M2 pin overlapping the same IO pin would be a short;
	// place it so its pin box [132,150)x[80,86) misses it.
	st = c.CheckPin(1, 0, 12, 1)
	if st.Short {
		t.Errorf("no overlap expected: %+v", st)
	}
}

func TestCountViolations(t *testing.T) {
	d := railDesign()
	d.Tech.EdgeSpacing = [][]int{{0, 0}, {0, 2}}
	d.Types[0].EdgeL, d.Types[0].EdgeR = 1, 1
	// Two CLEAN cells abutting (need 2 sites): edge violation.
	d.Cells = append(d.Cells,
		model.Cell{Name: "a", Type: 0, X: 20, Y: 3, GX: 20, GY: 3},
		model.Cell{Name: "b", Type: 0, X: 24, Y: 3, GX: 24, GY: 3},
		// LOWPIN on an even row: pin short.
		model.Cell{Name: "c", Type: 1, X: 40, Y: 4, GX: 40, GY: 4},
		// M1LOW on an even row: pin access.
		model.Cell{Name: "d", Type: 2, X: 50, Y: 4, GX: 50, GY: 4},
		// LOWPIN on an odd row: clean.
		model.Cell{Name: "e", Type: 1, X: 60, Y: 5, GX: 60, GY: 5},
	)
	v := NewChecker(d).Count()
	if v.PinShort != 1 || v.PinAccess != 1 || v.EdgeSpacing != 1 {
		t.Errorf("violations = %+v, want 1/1/1", v)
	}
	if v.Pin() != 2 {
		t.Errorf("Pin() = %d", v.Pin())
	}
}

func TestRulesRowForbidden(t *testing.T) {
	d := railDesign()
	r := NewRules(NewChecker(d))
	// LOWPIN forbidden on even rows (rail boundaries), fine on odd.
	if !r.RowForbidden(1, 0) || !r.RowForbidden(1, 6) {
		t.Errorf("LOWPIN should be forbidden on even rows")
	}
	if r.RowForbidden(1, 3) || r.RowForbidden(1, 7) {
		t.Errorf("LOWPIN should be allowed on odd rows")
	}
	// CLEAN allowed everywhere.
	if r.RowForbidden(0, 0) || r.RowForbidden(0, 1) {
		t.Errorf("CLEAN forbidden somewhere")
	}
	// Memo consistency on repeat queries.
	if !r.RowForbidden(1, 2) {
		t.Errorf("memoized answer wrong")
	}
}

func TestRulesXForbidden(t *testing.T) {
	d := railDesign()
	r := NewRules(NewChecker(d))
	// M2WIDE pin spans the full 40-DBU cell: forbidden when any stripe
	// intersects [x*10, x*10+40).
	if !r.XForbidden(3, 8, 0) { // 80..120 hits stripe 100..112
		t.Errorf("x=8 should be forbidden")
	}
	if r.XForbidden(3, 12, 0) { // 120..160 clean
		t.Errorf("x=12 should be clean")
	}
	if r.XForbidden(0, 8, 0) {
		t.Errorf("CLEAN has no M2/M3 pins near stripes; M1 pin never x-forbidden")
	}
}

func TestRulesIOPenalty(t *testing.T) {
	d := railDesign()
	d.IOPins = []model.IOPin{{Name: "io", Layer: model.LayerM2, Box: geom.RectWH(120, 110, 20, 20)}}
	r := NewRules(NewChecker(d))
	if p := r.IOPenalty(0, 11, 1); p != r.IOPenaltyDBU {
		t.Errorf("penalty = %d, want %d", p, r.IOPenaltyDBU)
	}
	if p := r.IOPenalty(0, 40, 1); p != 0 {
		t.Errorf("penalty far away = %d", p)
	}
}

func TestRangeProvider(t *testing.T) {
	d := railDesign()
	// One M2WIDE cell placed clean at x=12 row 1.
	d.Cells = append(d.Cells, model.Cell{Name: "a", Type: 3, X: 12, Y: 1, GX: 12, GY: 1})
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRules(NewChecker(d))
	lo, hi, ok := r.RangeProvider(grid)(0)
	if !ok {
		t.Fatal("provider declined")
	}
	// Clean run around 12: stripes at 100..112 and 300..312 DBU; pin
	// spans [x*10, x*10+40): forbidden when x*10 < 112 && x*10+40 > 100
	// => x in [7,11]; next stripe forbids x in [27,31]. So the run
	// around 12 is [12, 26].
	if lo != 12 || hi != 26 {
		t.Errorf("range = [%d,%d], want [12,26]", lo, hi)
	}
	// A cell already on a forbidden x gets no restriction.
	d.Cells[0].X = 9
	if _, _, ok := r.RangeProvider(grid)(0); ok {
		t.Errorf("provider should decline on a violating position")
	}
}
