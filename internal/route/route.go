// Package route implements the paper's routability model (Sections 2
// and 3.4): pin shorts (a signal pin overlapping a P/G rail or IO pin
// on the same metal layer), pin access violations (overlap with a rail
// or IO pin one layer up), and edge-spacing rules.
//
// It provides three things:
//
//   - Checker, the violation counter used by the evaluation (Table 1's
//     "Pin Access" and "Edge Space" columns);
//   - an mgl.Rules implementation that steers MGL away from violating
//     rows/x-positions and penalizes IO overlaps;
//   - a feasible-range provider for the fixed-row-and-order refinement
//     (Section 3.4: C_L = C_R = C).
package route

import (
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// Checker precomputes the rail geometry of a design for fast
// per-position queries. It is safe for concurrent use after creation.
type Checker struct {
	d *model.Design

	hQ      int64 // horizontal rail period in DBU (0 = none)
	hHalfW  int64
	vPitch  int64 // vertical stripe pitch in DBU (0 = none)
	vOff    int64 // first stripe x in DBU
	vW      int64
	coreW   int64
	ioByLay [8][]geom.Rect // IO pin boxes per layer
}

// NewChecker builds a checker for d.
func NewChecker(d *model.Design) *Checker {
	c := &Checker{d: d}
	t := &d.Tech
	if t.HRailPeriod > 0 {
		c.hQ = int64(t.HRailPeriod) * int64(t.RowH)
		c.hHalfW = int64(t.HRailHalfW)
	}
	if t.VRailPitch > 0 && t.VRailW > 0 {
		c.vPitch = int64(t.VRailPitch) * int64(t.SiteW)
		c.vOff = int64(t.VRailOffset) * int64(t.SiteW)
		c.vW = int64(t.VRailW)
	}
	c.coreW = int64(t.NumSites) * int64(t.SiteW)
	for _, io := range d.IOPins {
		if io.Layer >= 0 && io.Layer < len(c.ioByLay) {
			c.ioByLay[io.Layer] = append(c.ioByLay[io.Layer], io.Box)
		}
	}
	return c
}

// hitsHRail reports whether the DBU y-interval [lo,hi) crosses a
// horizontal rail.
func (c *Checker) hitsHRail(lo, hi int64) bool {
	if c.hQ == 0 || hi <= lo {
		return false
	}
	// A rail center jQ overlaps iff jQ in (lo-halfW, hi+halfW).
	a := lo - c.hHalfW + 1
	b := hi + c.hHalfW - 1 // inclusive range [a,b]
	if b < a {
		return false
	}
	j := a / c.hQ
	if j*c.hQ < a {
		j++
	}
	if a <= 0 && 0 <= b {
		return true // j = 0 rail
	}
	return j*c.hQ <= b && j >= 0
}

// hitsVRail reports whether the DBU x-interval [lo,hi) crosses a
// vertical P/G stripe.
func (c *Checker) hitsVRail(lo, hi int64) bool {
	if c.vPitch == 0 || hi <= lo {
		return false
	}
	// Stripe k starts at s = vOff + k*vPitch, k >= 0, s < coreW;
	// overlap iff s in (lo - vW, hi).
	a := lo - c.vW + 1
	b := hi - 1 // inclusive [a,b] for s
	if b < a {
		return false
	}
	if a < c.vOff {
		a = c.vOff
	}
	if m := c.coreW - 1; b > m {
		b = m
	}
	if b < a {
		return false
	}
	k := (a - c.vOff) / c.vPitch
	s := c.vOff + k*c.vPitch
	if s < a {
		s += c.vPitch
	}
	return s <= b
}

// flipped reports whether a cell of the given type placed with bottom
// row y is vertically mirrored (odd-height cells on the "other" parity,
// when Tech.FlipOddRows is enabled).
func (c *Checker) flipped(ct model.CellTypeID, y int) bool {
	t := &c.d.Tech
	if !t.FlipOddRows {
		return false
	}
	h := c.d.Types[ct].Height
	return h%2 == 1 && ((y%2)+2)%2 != t.EvenBottomParity
}

// pinBox returns the absolute DBU box of pin p of a cell of type ct
// placed at site (x, y), accounting for vertical mirroring.
func (c *Checker) pinBox(ct model.CellTypeID, p *model.PinShape, x, y int) geom.Rect {
	dx := x * c.d.Tech.SiteW
	dy := y * c.d.Tech.RowH
	yLo, yHi := p.Box.YLo, p.Box.YHi
	if c.flipped(ct, y) {
		hDBU := c.d.Types[ct].Height * c.d.Tech.RowH
		yLo, yHi = hDBU-p.Box.YHi, hDBU-p.Box.YLo
	}
	return geom.Rect{
		XLo: p.Box.XLo + dx, YLo: yLo + dy,
		XHi: p.Box.XHi + dx, YHi: yHi + dy,
	}
}

// hitsIO reports whether box overlaps any IO pin on the given layer.
func (c *Checker) hitsIO(box geom.Rect, layer int) bool {
	if layer < 0 || layer >= len(c.ioByLay) {
		return false
	}
	for _, io := range c.ioByLay[layer] {
		if box.Overlaps(io) {
			return true
		}
	}
	return false
}

// PinStatus classifies one pin placement.
type PinStatus struct {
	Short  bool // overlap with a rail/IO pin on the same layer
	Access bool // overlap with a rail/IO pin one layer up
}

// CheckPin classifies pin p of a cell of type ct placed at (x,y).
func (c *Checker) CheckPin(ct model.CellTypeID, pinIdx, x, y int) PinStatus {
	p := &c.d.Types[ct].Pins[pinIdx]
	box := c.pinBox(ct, p, x, y)
	var st PinStatus
	t := &c.d.Tech
	// Rails on the pin's own layer: short.
	if p.Layer == t.HRailLayer && c.hitsHRail(int64(box.YLo), int64(box.YHi)) {
		st.Short = true
	}
	if p.Layer == t.VRailLayer && c.hitsVRail(int64(box.XLo), int64(box.XHi)) {
		st.Short = true
	}
	// Rails one layer up: access.
	if p.Layer+1 == t.HRailLayer && c.hitsHRail(int64(box.YLo), int64(box.YHi)) {
		st.Access = true
	}
	if p.Layer+1 == t.VRailLayer && c.hitsVRail(int64(box.XLo), int64(box.XHi)) {
		st.Access = true
	}
	// IO pins.
	if c.hitsIO(box, p.Layer) {
		st.Short = true
	}
	if c.hitsIO(box, p.Layer+1) {
		st.Access = true
	}
	return st
}

// Violations aggregates the soft-constraint counts of a placement.
type Violations struct {
	PinShort    int
	PinAccess   int
	EdgeSpacing int
}

// Pin returns N_p, the combined pin violation count of Eq. (10).
func (v Violations) Pin() int { return v.PinShort + v.PinAccess }

// Count audits the whole placement: every movable cell's pins against
// rails and IO pins, and every adjacent cell pair against the
// edge-spacing table. Each pin contributes at most one short and one
// access violation.
func (c *Checker) Count() Violations {
	var v Violations
	d := c.d
	type entry struct {
		id model.CellID
		x  geom.Interval
	}
	rows := make([][]entry, d.Tech.NumRows)
	for i := range d.Cells {
		cell := &d.Cells[i]
		if cell.Fixed {
			continue
		}
		ct := cell.Type
		for pi := range d.Types[ct].Pins {
			st := c.CheckPin(ct, pi, cell.X, cell.Y)
			if st.Short {
				v.PinShort++
			}
			if st.Access {
				v.PinAccess++
			}
		}
		r := d.CellRect(model.CellID(i))
		for y := r.YLo; y < r.YHi; y++ {
			rows[y] = append(rows[y], entry{id: model.CellID(i), x: r.XIv()})
		}
	}
	if len(d.Tech.EdgeSpacing) > 0 {
		for y := range rows {
			es := rows[y]
			sort.Slice(es, func(a, b int) bool { return es[a].x.Lo < es[b].x.Lo })
			for k := 1; k < len(es); k++ {
				a, b := es[k-1], es[k]
				ca, cb := &d.Cells[a.id], &d.Cells[b.id]
				need := d.Tech.Spacing(d.Types[ca.Type].EdgeR, d.Types[cb.Type].EdgeL)
				if need == 0 || b.x.Lo-a.x.Hi >= need {
					continue
				}
				// Count each violating pair once, on the bottom-most
				// shared row.
				ra, rb := d.CellRect(a.id), d.CellRect(b.id)
				if y == maxInt(ra.YLo, rb.YLo) {
					v.EdgeSpacing++
				}
			}
		}
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
