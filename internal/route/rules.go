package route

import (
	"sync"

	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Rules adapts a Checker to the mgl.Rules interface, with memoized
// per-(type,row-phase) horizontal-rail answers. IOPenaltyDBU is the
// additive cost charged per IO-pin overlap (paper Section 3.4 gives
// penalties to insertion points overlapping IO pins).
type Rules struct {
	C            *Checker
	IOPenaltyDBU int64

	mu sync.Mutex
	//mclegal:ephemeral the memo caches answers derived purely from the immutable tech and type tables; dropping it never changes an answer, only recomputes it
	rowMemo map[rowKey]bool
}

type rowKey struct {
	ct    model.CellTypeID
	phase int
}

// NewRules builds the MGL routability hook. A zero penalty defaults to
// four row heights per overlapping pin.
func NewRules(c *Checker) *Rules {
	return &Rules{
		C:            c,
		IOPenaltyDBU: 4 * int64(c.d.Tech.RowH),
		rowMemo:      make(map[rowKey]bool),
	}
}

// RowForbidden reports whether any pin of the type shorts or blocks
// against a horizontal rail when the cell's bottom row is y. Only the
// row phase matters (y modulo the rail period, extended to the parity
// period when odd-height flipping is enabled), so answers memoize.
func (r *Rules) RowForbidden(ct model.CellTypeID, y int) bool {
	t := &r.C.d.Tech
	if t.HRailPeriod <= 0 {
		return false
	}
	mod := t.HRailPeriod
	if t.FlipOddRows && mod%2 == 1 {
		mod *= 2 // phase must also determine the flip parity
	}
	key := rowKey{ct: ct, phase: ((y % mod) + mod) % mod}
	r.mu.Lock()
	if v, ok := r.rowMemo[key]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()

	bad := false
	for pi, p := range r.C.d.Types[ct].Pins {
		if p.Layer != t.HRailLayer && p.Layer+1 != t.HRailLayer {
			continue
		}
		box := r.C.pinBox(ct, &r.C.d.Types[ct].Pins[pi], 0, key.phase)
		if r.C.hitsHRail(int64(box.YLo), int64(box.YHi)) {
			bad = true
			break
		}
	}
	r.mu.Lock()
	//mclegal:alloc memo store runs once per (cell type, rail phase) key; steady-state queries return from the populated map above
	r.rowMemo[key] = bad
	r.mu.Unlock()
	return bad
}

// XForbidden reports whether any pin of the type conflicts with a
// vertical P/G stripe when placed at site x.
func (r *Rules) XForbidden(ct model.CellTypeID, x, y int) bool {
	t := &r.C.d.Tech
	if t.VRailPitch <= 0 {
		return false
	}
	dx := int64(x) * int64(t.SiteW)
	for _, p := range r.C.d.Types[ct].Pins {
		if p.Layer != t.VRailLayer && p.Layer+1 != t.VRailLayer {
			continue
		}
		if r.C.hitsVRail(int64(p.Box.XLo)+dx, int64(p.Box.XHi)+dx) {
			return true
		}
	}
	return false
}

// IOPenalty charges IOPenaltyDBU per pin overlapping an IO pin (same
// layer or one layer up) at position (x,y).
func (r *Rules) IOPenalty(ct model.CellTypeID, x, y int) int64 {
	if len(r.C.d.IOPins) == 0 {
		return 0
	}
	var pen int64
	for pi, p := range r.C.d.Types[ct].Pins {
		box := r.C.pinBox(ct, &r.C.d.Types[ct].Pins[pi], x, y)
		if r.C.hitsIO(box, p.Layer) || r.C.hitsIO(box, p.Layer+1) {
			pen += r.IOPenaltyDBU
		}
	}
	return pen
}

// RangeProvider returns the refine feasible-range hook of Section 3.4:
// for each cell, the maximal contiguous run of x positions around its
// current x that is free of vertical-rail conflicts (and clipped to its
// segment span by refine itself). Cells already on a conflicting x get
// no restriction.
func (r *Rules) RangeProvider(grid *seg.Grid) func(model.CellID) (int, int, bool) {
	d := r.C.d
	return func(id model.CellID) (int, int, bool) {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		if r.XForbidden(c.Type, c.X, c.Y) {
			return 0, 0, false
		}
		span, ok := grid.SpanInterval(c.Fence, c.X, c.Y, ct.Height)
		if !ok {
			return 0, 0, false
		}
		lo, hi := c.X, c.X
		for lo > span.Lo && !r.XForbidden(c.Type, lo-1, c.Y) {
			lo--
		}
		for hi < span.Hi-ct.Width && !r.XForbidden(c.Type, hi+1, c.Y) {
			hi++
		}
		return lo, hi, true
	}
}
