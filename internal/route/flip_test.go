package route

import (
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// flipDesign: a single-height type whose only pin hugs the cell bottom.
// Without flipping it conflicts with the horizontal rail on even rows
// only; with flipping enabled the mirrored orientation on odd rows puts
// the pin at the cell top, where the rail at the (even) upper boundary
// catches it instead.
func flipDesign(flip bool) *model.Design {
	t := railTech()
	t.FlipOddRows = flip
	return &model.Design{
		Name: "flip",
		Tech: t,
		Types: []model.CellType{
			{
				Name: "LOW", Width: 4, Height: 1,
				Pins: []model.PinShape{
					{Name: "B", Layer: model.LayerM2, Box: geom.RectWH(12, 0, 8, 6)},
				},
			},
			{
				Name: "TALL3", Width: 4, Height: 3,
				Pins: []model.PinShape{
					// Near the bottom of a 3-high cell: [0,6) relative;
					// mirrored: [234,240).
					{Name: "B", Layer: model.LayerM2, Box: geom.RectWH(12, 0, 8, 6)},
				},
			},
		},
	}
}

func TestFlipMirrorsPinGeometry(t *testing.T) {
	d := flipDesign(true)
	c := NewChecker(d)
	// Even row (reference orientation): pin at the bottom boundary,
	// which carries a rail -> short.
	if st := c.CheckPin(0, 0, 0, 2); !st.Short {
		t.Errorf("unflipped cell on rail row should short: %+v", st)
	}
	// Odd row: flipped, pin now at the TOP of the cell = boundary of
	// row y+1, which is even and carries a rail -> still a short, but
	// through the mirrored geometry.
	if st := c.CheckPin(0, 0, 0, 3); !st.Short {
		t.Errorf("flipped cell pin should hit the upper rail: %+v", st)
	}
	// Without flipping, the odd-row position is clean (pin stays at the
	// railless lower boundary).
	d2 := flipDesign(false)
	c2 := NewChecker(d2)
	if st := c2.CheckPin(0, 0, 0, 3); st.Short {
		t.Errorf("unflipped odd-row cell should be clean: %+v", st)
	}
}

func TestFlipTallOddCell(t *testing.T) {
	d := flipDesign(true)
	c := NewChecker(d)
	// TALL3 on row 1 (odd, flipped): pin mirrors to [234,240) relative,
	// abs [314,320): the rail at 320 covers [316,324) -> short.
	if st := c.CheckPin(1, 0, 0, 1); !st.Short {
		t.Errorf("flipped tall cell should short at the top: %+v", st)
	}
	// On row 2 (even, unflipped): pin abs [160,166), rail at 160 covers
	// [156,164) -> short through the original geometry.
	if st := c.CheckPin(1, 0, 0, 2); !st.Short {
		t.Errorf("unflipped tall cell on rail row should short: %+v", st)
	}
	// Even-height cells never flip regardless of the option.
	if c.flipped(0, 3) != true || c.flipped(1, 3) != true {
		t.Errorf("odd-height cells should flip on odd rows")
	}
}

func TestFlipRowForbiddenUsesMirroredGeometry(t *testing.T) {
	dNo := flipDesign(false)
	dYes := flipDesign(true)
	rNo := NewRules(NewChecker(dNo))
	rYes := NewRules(NewChecker(dYes))
	// LOW without flipping: even rows forbidden, odd rows fine.
	if !rNo.RowForbidden(0, 2) || rNo.RowForbidden(0, 3) {
		t.Errorf("unflipped RowForbidden wrong")
	}
	// With flipping: both parities conflict (bottom rail when
	// unflipped, top rail when flipped).
	if !rYes.RowForbidden(0, 2) || !rYes.RowForbidden(0, 3) {
		t.Errorf("flipped RowForbidden should forbid both parities")
	}
}

func TestFlipCountsViolations(t *testing.T) {
	d := flipDesign(true)
	d.Cells = append(d.Cells,
		model.Cell{Name: "a", Type: 0, X: 10, Y: 3, GX: 10, GY: 3}, // flipped: short
	)
	v := NewChecker(d).Count()
	if v.PinShort != 1 {
		t.Errorf("flipped cell short not counted: %+v", v)
	}
	if _, err := seg.Build(d); err != nil {
		t.Fatal(err)
	}
}
