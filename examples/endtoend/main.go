// End to end: netlist -> quadratic global placement -> three-stage
// legalization. The paper assumes a GP solution as input; the bundled
// quadratic placer makes the repository self-contained so you can go
// from connectivity alone to a legal placement.
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"mclegal"
)

func main() {
	// A netlist with meaningless initial positions: scramble the GP so
	// only connectivity carries information.
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name: "endtoend", Seed: 21,
		Counts:  [4]int{1200, 120, 30, 10},
		Density: 0.55,
		NetFrac: 0.8,
		Macros:  2,
	})
	rng := rand.New(rand.NewSource(99))
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		ct := &d.Types[d.Cells[i].Type]
		d.Cells[i].GX = rng.Intn(d.Tech.NumSites - ct.Width)
		d.Cells[i].GY = rng.Intn(d.Tech.NumRows - ct.Height)
		d.Cells[i].X, d.Cells[i].Y = d.Cells[i].GX, d.Cells[i].GY
	}
	fmt.Printf("random placement HPWL:    %10d DBU\n", mclegal.HPWL(d))

	mclegal.GlobalPlace(d, mclegal.GPOptions{})
	gpHPWL := mclegal.HPWL(d)
	fmt.Printf("global placement HPWL:    %10d DBU\n", gpHPWL)

	res, err := mclegal.Legalize(d, mclegal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if v, _ := mclegal.Audit(d); len(v) > 0 {
		log.Fatalf("not legal: %v", v)
	}
	fmt.Printf("legalized HPWL:           %10d DBU (%.1f%% over GP)\n",
		res.HPWLAfter, 100*float64(res.HPWLAfter-gpHPWL)/float64(gpHPWL))
	fmt.Printf("avg displacement from GP: %10.3f rows\n", res.Metrics.AvgDisp)
	fmt.Printf("max displacement from GP: %10.1f rows\n", res.Metrics.MaxDisp)

	// Render the result for inspection.
	if f, err := os.Create("endtoend.svg"); err == nil {
		defer f.Close()
		if err := mclegal.WriteSVG(f, d, mclegal.PlotOptions{Displacement: true}); err == nil {
			fmt.Println("wrote endtoend.svg")
		}
	}
}
