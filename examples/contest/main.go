// Contest: generate one ICCAD-2017-style benchmark, run the paper's
// flow against the contest-champion stand-in, and print a Table-1-style
// comparison row (displacement, violations, score).
//
//	go run ./examples/contest [-bench fft_a_md2] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mclegal"
	"mclegal/internal/baseline"
	"mclegal/internal/eval"
)

func main() {
	benchName := flag.String("bench", "fft_a_md2", "contest benchmark name")
	scale := flag.Float64("scale", 0.05, "cell-count scale vs the published size")
	flag.Parse()

	var bench mclegal.Bench
	found := false
	for _, b := range mclegal.ContestBenches() {
		if b.Name == *benchName {
			bench, found = b, true
		}
	}
	if !found {
		log.Fatalf("unknown benchmark %q", *benchName)
	}

	ours := mclegal.ContestDesign(bench, *scale)
	champ := ours.Clone()
	hpwlGP := mclegal.HPWL(ours)
	fmt.Printf("benchmark %s at scale %.2f: %d cells, density %.1f%%\n\n",
		bench.Name, *scale, ours.MovableCount(), bench.Density*100)

	t0 := time.Now()
	res, err := mclegal.Legalize(ours, mclegal.Options{Routability: true})
	if err != nil {
		log.Fatal(err)
	}
	oursTime := time.Since(t0)

	t0 = time.Now()
	if err := baseline.Champion(champ, 0); err != nil {
		log.Fatal(err)
	}
	champTime := time.Since(t0)
	champRes := mclegal.Evaluate(champ, hpwlGP)

	row := func(name string, r mclegal.Result, rt time.Duration) {
		fmt.Printf("%-10s avg=%6.3f max=%6.1f hpwl=%.3fe6 pins=%4d edge=%4d score=%6.3f  %6.2fs\n",
			name, r.Metrics.AvgDisp, r.Metrics.MaxDisp,
			float64(r.HPWLAfter)/1e6, r.Violations.Pin(), r.Violations.EdgeSpacing,
			r.Score, rt.Seconds())
	}
	fmt.Println("               Avg.D   Max.D  HPWL      Np    Ne   Score    Runtime")
	row("champion", champRes, champTime)
	row("ours", res, oursTime)

	m := eval.Measure(ours)
	_ = m
	fmt.Println()
	if res.Metrics.AvgDisp < champRes.Metrics.AvgDisp {
		fmt.Printf("ours is %.0f%% better on average displacement\n",
			100*(1-res.Metrics.AvgDisp/champRes.Metrics.AvgDisp))
	}
	if res.Violations.Pin() < champRes.Violations.Pin() {
		fmt.Printf("pin violations reduced %d -> %d\n", champRes.Violations.Pin(), res.Violations.Pin())
	}
}
