// Fence regions: cells assigned to a fence must be placed inside it and
// all other cells must stay out, even when the GP solution says
// otherwise. This example builds a design where both kinds of cells sit
// on the wrong side of a fence boundary and shows the legalizer sorting
// them out (paper Section 2, hard constraint 2).
//
//	go run ./examples/fences
package main

import (
	"fmt"
	"log"

	"mclegal"
	"mclegal/internal/geom"
)

func main() {
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name:      "fences",
		Seed:      7,
		Counts:    [4]int{600, 60, 15, 0},
		Density:   0.55,
		NumFences: 3,
		FenceFrac: 0.7,
		NetFrac:   0.4,
	})

	// Count GP-side fence mismatches before legalization.
	inFence := func(i int) mclegal.FenceID {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		r := geom.RectWH(c.X, c.Y, ct.Width, ct.Height)
		for fi := range d.Fences {
			for _, fr := range d.Fences[fi].Rects {
				if fr.Overlaps(r) {
					return mclegal.FenceID(fi + 1)
				}
			}
		}
		return 0
	}
	misplaced := 0
	for i := range d.Cells {
		if got := inFence(i); got != d.Cells[i].Fence {
			misplaced++
		}
	}
	fmt.Printf("cells on the wrong side of a fence at GP: %d of %d\n",
		misplaced, len(d.Cells))

	res, err := mclegal.Legalize(d, mclegal.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	if v, _ := mclegal.Audit(d); len(v) > 0 {
		log.Fatalf("not legal: %v", v)
	}

	misplaced = 0
	for i := range d.Cells {
		if got := inFence(i); got != d.Cells[i].Fence {
			misplaced++
		}
	}
	fmt.Printf("after legalization:                       %d of %d\n",
		misplaced, len(d.Cells))
	for fi := range d.Fences {
		n := 0
		for i := range d.Cells {
			if d.Cells[i].Fence == mclegal.FenceID(fi+1) {
				n++
			}
		}
		fmt.Printf("  fence %d (%v): %d member cells\n", fi+1, d.Fences[fi].Rects[0], n)
	}
	fmt.Printf("average displacement: %.3f rows, max: %.1f rows\n",
		res.Metrics.AvgDisp, res.Metrics.MaxDisp)
}
