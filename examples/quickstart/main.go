// Quickstart: build a small mixed-cell-height design by hand, legalize
// it with the full three-stage pipeline under a cancellable context
// with per-stage progress, and print the metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"mclegal"
)

func main() {
	// A 60-site x 10-row core; sites are 10x80 DBU.
	d := &mclegal.Design{
		Name: "quickstart",
		Tech: mclegal.Tech{
			SiteW: 10, RowH: 80,
			NumSites: 60, NumRows: 10,
		},
		Types: []mclegal.CellType{
			{Name: "INV", Width: 2, Height: 1},
			{Name: "DFF2", Width: 3, Height: 2}, // double height: P/G parity applies
			{Name: "MBFF3", Width: 5, Height: 3},
		},
	}
	// A cluster of cells whose GP positions overlap around (20, 4).
	add := func(ti mclegal.CellTypeID, gx, gy int) {
		d.Cells = append(d.Cells, mclegal.Cell{
			Name: fmt.Sprintf("c%d", len(d.Cells)),
			Type: ti, GX: gx, GY: gy, X: gx, Y: gy,
		})
	}
	add(2, 19, 3) // triple-height
	add(1, 20, 3) // double-height (odd row: must move for P/G alignment)
	add(1, 21, 4)
	for i := 0; i < 8; i++ {
		add(0, 19+i%3, 3+i%2)
	}

	// A deadline bounds the run (it finishes in milliseconds here, but
	// the same pattern aborts runaway production runs cleanly), and a
	// log observer prints one line per pipeline stage to stderr.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := mclegal.LegalizeContext(ctx, d, mclegal.Options{
		Workers:  1,
		Observer: mclegal.NewLogObserver(os.Stderr),
	})
	if err != nil {
		log.Fatal(err)
	}
	if v, _ := mclegal.Audit(d); len(v) > 0 {
		log.Fatalf("not legal: %v", v)
	}

	fmt.Println("legalized placement:")
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		fmt.Printf("  %-4s %-6s GP=(%2d,%2d) -> (%2d,%2d)\n",
			c.Name, ct.Name, c.GX, c.GY, c.X, c.Y)
	}
	fmt.Printf("\naverage displacement (rows): %.3f\n", res.Metrics.AvgDisp)
	fmt.Printf("maximum displacement (rows): %.3f\n", res.Metrics.MaxDisp)
	fmt.Printf("runtime: MGL %v, matching %v, refine %v\n",
		res.MGLTime, res.MaxDispTime, res.RefineTime)
}
