// Routability: pin access, pin short and edge spacing (paper Figure 1
// and Section 3.4). The same instance is legalized twice — once
// routability-blind and once with the paper's routability handling —
// and the violation counts are compared.
//
//	go run ./examples/routability
package main

import (
	"fmt"
	"log"

	"mclegal"
)

func main() {
	gen := func() *mclegal.Design {
		return mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
			Name:        "routability",
			Seed:        3,
			Counts:      [4]int{800, 80, 20, 8},
			Density:     0.6,
			NumFences:   1,
			FenceFrac:   0.5,
			NetFrac:     0.4,
			IOPins:      16,
			Routability: true, // rails + rail-sensitive pins in the library
		})
	}

	run := func(name string, routability bool) mclegal.Result {
		d := gen()
		res, err := mclegal.Legalize(d, mclegal.Options{
			Routability: routability,
			Workers:     1,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if v, _ := mclegal.Audit(d); len(v) > 0 {
			log.Fatalf("%s: not legal: %v", name, v)
		}
		fmt.Printf("%-20s avg=%.3f max=%5.1f  pin short=%3d  pin access=%3d  edge=%3d\n",
			name, res.Metrics.AvgDisp, res.Metrics.MaxDisp,
			res.Violations.PinShort, res.Violations.PinAccess, res.Violations.EdgeSpacing)
		return res
	}

	fmt.Println("legalizing the same instance with and without routability handling:")
	blind := run("routability-blind", false)
	aware := run("routability-aware", true)

	fmt.Println()
	fmt.Printf("pin violations: %d -> %d\n", blind.Violations.Pin(), aware.Violations.Pin())
	fmt.Printf("edge-spacing violations: %d -> %d\n",
		blind.Violations.EdgeSpacing, aware.Violations.EdgeSpacing)
	fmt.Println()
	fmt.Println("the violation taxonomy (paper Figure 1):")
	fmt.Println("  pin SHORT : signal pin overlaps a P/G rail or IO pin on the SAME layer")
	fmt.Println("  pin ACCESS: signal pin overlaps a rail or IO pin ONE LAYER UP")
	fmt.Println("MGL avoids them by skipping conflicting rows (horizontal rails),")
	fmt.Println("sliding along x (vertical stripes), and penalizing IO overlaps; the")
	fmt.Println("final refinement keeps every cell inside its rail-free range.")
}
