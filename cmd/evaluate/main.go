// evaluate audits and scores a .mcl design's current placement without
// modifying it.
//
// Usage:
//
//	evaluate -i legal.mcl [-gp gp.mcl]
//
// With -gp, HPWL degradation is measured against the GP-position HPWL
// of the given (usually pre-legalization) design.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mclegal"
)

func readDesign(path string) *mclegal.Design {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := mclegal.ReadDesign(f)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	in := flag.String("i", "", "design to evaluate (required)")
	gp := flag.String("gp", "", "reference design for HPWL-before (optional)")
	svg := flag.String("svg", "", "write an SVG rendering of the placement (optional)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	d := readDesign(*in)
	violations, err := mclegal.Audit(d)
	if err != nil {
		log.Fatal(err)
	}
	if len(violations) == 0 {
		fmt.Println("legality      OK")
	} else {
		fmt.Printf("legality      %d violations\n", len(violations))
		for i, v := range violations {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(violations)-10)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	}

	before := mclegal.HPWL(d)
	if *gp != "" {
		ref := readDesign(*gp)
		ref.ResetToGP()
		before = mclegal.HPWL(ref)
	}
	res := mclegal.Evaluate(d, before)
	fmt.Printf("cells         %d movable\n", d.MovableCount())
	fmt.Printf("avg disp      %.4f rows\n", res.Metrics.AvgDisp)
	fmt.Printf("max disp      %.1f rows\n", res.Metrics.MaxDisp)
	fmt.Printf("total (sites) %.0f\n", res.Metrics.TotalDispSites)
	fmt.Printf("HPWL          %d (before: %d)\n", res.HPWLAfter, res.HPWLBefore)
	fmt.Printf("pin short     %d\n", res.Violations.PinShort)
	fmt.Printf("pin access    %d\n", res.Violations.PinAccess)
	fmt.Printf("edge spacing  %d\n", res.Violations.EdgeSpacing)
	fmt.Printf("score         %.4f\n", res.Score)

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := mclegal.WriteSVG(f, d, mclegal.PlotOptions{
			Displacement: true, Rails: true, HighlightType: -1,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg           %s\n", *svg)
	}
}
