package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mclegal/internal/bmark"
)

// syncBuffer lets the test read run's stdout while run is still
// writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// waitForAddr polls stdout for the bound listen address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeBench(t *testing.T) string {
	t.Helper()
	d := bmark.Generate(bmark.Params{
		Name: "mclegald-test", Seed: 5, Counts: [4]int{40, 6, 1, 1},
		Density: 0.5, NumFences: 1, FenceFrac: 0.5, NetFrac: 0.5,
	})
	path := filepath.Join(t.TempDir(), "d.mcl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bmark.Write(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// The full daemon lifecycle: boot with a preloaded design, serve
// health and legalization requests over real HTTP, then drain cleanly
// on SIGTERM and exit 0.
func TestServeAndGracefulShutdown(t *testing.T) {
	path := writeBench(t)
	var stdout syncBuffer
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-grace", "30s",
			"-design", "alpha=" + path,
		}, &stdout, &stderr)
	}()
	addr := waitForAddr(t, &stdout)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	leg, err := http.Post(base+"/legalize/alpha", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(leg.Body)
	leg.Body.Close()
	if leg.StatusCode != http.StatusOK {
		t.Fatalf("legalize/alpha = %d: %s", leg.StatusCode, body)
	}
	if st := leg.Header.Get("X-Mclegal-Status"); st != "legal" {
		t.Errorf("X-Mclegal-Status = %q, want legal", st)
	}
	if _, err := bmark.Read(bytes.NewReader(body)); err != nil {
		t.Errorf("response body is not a readable design: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitOK, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("stderr lacks the clean-drain line: %q", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb syncBuffer
	for _, args := range [][]string{
		{"-max-inflight", "0"},
		{"-grace", "-1s"},
		{"-design", "nopath"},
	} {
		if code := run(args, &out, &errb); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestPreloadFailure(t *testing.T) {
	var out, errb syncBuffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-design", "x=/does/not/exist.mcl"}, &out, &errb); code != exitFailed {
		t.Errorf("missing preload file: run = %d, want %d", code, exitFailed)
	}
}
