// mclegald is the legalization server: it holds parsed .mcl designs
// resident in memory and serves concurrent legalize, evaluate and
// audit requests over HTTP (see docs/ROBUSTNESS.md, "Serving").
//
// Usage:
//
//	mclegald [-addr :8765] [-max-inflight 4] [-timeout 1m]
//	         [-max-timeout 5m] [-grace 30s] [-max-bytes 67108864]
//	         [-max-count 4194304] [-workers 0] [-shards 0]
//	         [-design name=path.mcl]...
//
// Endpoints:
//
//	GET    /healthz              liveness (always 200 while the process runs)
//	GET    /readyz               readiness (503 once draining)
//	GET    /designs              list resident designs
//	POST   /designs/{name}       store the .mcl request body as a resident design
//	GET    /designs/{name}       fetch a resident design as .mcl
//	DELETE /designs/{name}       drop a resident design
//	POST   /legalize[/{name}]    legalize the body (or resident {name}); .mcl out
//	POST   /evaluate[/{name}]    score the body (or resident {name}); JSON out
//	POST   /audit[/{name}]       audit legality; JSON out
//
// Run options ride query parameters (?routability=1&total=1&verify=0
// &recovery=strict|fallback|besteffort&shards=N|auto&workers=N
// &timeout=30s); failures come back as JSON {"error":{"kind":...}}
// with matching HTTP status codes.
//
// SIGTERM/SIGINT drain gracefully: the server stops accepting work,
// in-flight runs get -grace to finish, and whatever is still running
// when the grace expires is cancelled and answers its client with a
// typed partial-result error before the process exits.
//
// Exit codes:
//
//	0  clean shutdown: every in-flight request finished inside -grace
//	1  server failure (bad listen address, unreadable -design preload)
//	2  usage error
//	3  forced drain: -grace expired and in-flight runs were cancelled
//	   (each still answered its client with a typed error)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/model"
	"mclegal/internal/serve"
)

const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitForcedDrain = 3
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mclegald", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8765", "listen address (host:port; :0 picks a free port)")
		maxInflight = fs.Int("max-inflight", 4, "concurrent run requests admitted; beyond this the server answers 429 + Retry-After")
		timeout     = fs.Duration("timeout", time.Minute, "default per-request deadline budget")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested ?timeout budgets")
		grace       = fs.Duration("grace", 30*time.Second, "drain grace: how long in-flight runs get to finish on SIGTERM")
		maxBytes    = fs.Int64("max-bytes", 64<<20, "request-body byte limit for .mcl parsing")
		maxCount    = fs.Int("max-count", 4<<20, "per-section entity-count limit for .mcl parsing")
		workers     = fs.Int("workers", 0, "default MGL worker threads per run (0 = all cores)")
		shards      = fs.Int("shards", 0, "default shard concurrency per run (0 = monolithic)")
	)
	preload := map[string]string{}
	fs.Func("design", "preload a resident design as name=path.mcl (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-design wants name=path.mcl, got %q", v)
		}
		preload[name] = path
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lg := log.New(stderr, "mclegald: ", 0)
	if *maxInflight <= 0 || *timeout <= 0 || *maxTimeout <= 0 || *grace <= 0 {
		lg.Print("-max-inflight, -timeout, -max-timeout and -grace must be positive")
		return exitUsage
	}

	s := serve.New(serve.Config{
		MaxInflight:    *maxInflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Limits:         bmark.Limits{MaxBytes: *maxBytes, MaxCount: *maxCount},
		Workers:        *workers,
		Shards:         *shards,
	})
	// Preload in sorted order so startup logs are deterministic.
	names := make([]string, 0, len(preload))
	for name := range preload {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d, err := readDesignFile(preload[name])
		if err != nil {
			lg.Printf("preload %s: %v", name, err)
			return exitFailed
		}
		s.AddDesign(name, d)
		lg.Printf("resident design %q: %d cells", name, len(d.Cells))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Print(err)
		return exitFailed
	}
	fmt.Fprintf(stdout, "mclegald listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)

	drained := make(chan error, 1)
	//mclegal:daemon blocks on the OS signal channel for the process lifetime; the drain handoff below joins it on the shutdown path
	go func() {
		<-sigs
		lg.Printf("draining (grace %v)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		derr := s.Drain(ctx)
		// By now every run is finished or cancelled; Shutdown just
		// closes the listener and idle connections.
		_ = srv.Shutdown(ctx)
		drained <- derr
	}()

	if serr := srv.Serve(ln); serr != http.ErrServerClosed {
		lg.Print(serr)
		return exitFailed
	}
	if derr := <-drained; derr != nil {
		lg.Printf("forced drain: in-flight runs were cancelled (%v)", derr)
		return exitForcedDrain
	}
	lg.Print("drained cleanly")
	return exitOK
}

func readDesignFile(path string) (*model.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bmark.Read(f)
}
