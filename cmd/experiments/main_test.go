package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range [][]string{
		{},                       // neither -table nor -fig
		{"-table", "9"},          // unknown table
		{"-fig", "2"},            // unknown figure
		{"-shards", "bogus"},     // bad shard count
		{"-shards", "-3"},        // negative shard count
		{"-no-such-flag", "yes"}, // unknown flag
	} {
		var out bytes.Buffer
		if code := run(tc, &out); code != 2 {
			t.Errorf("run(%q) = %d, want 2", tc, code)
		}
	}
}

// A sharded table-3 row must run end to end: the ablation legalizes
// the same bench twice through the sharded path and audits both.
func TestRunShardedTableRow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline four times")
	}
	var out bytes.Buffer
	code := run([]string{
		"-table", "3", "-bench", "fft_a_md3", "-scale", "0.02",
		"-workers", "1", "-shards", "2",
	}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "fft_a_md3") {
		t.Errorf("no benchmark row in output:\n%s", out.String())
	}
}
