// experiments regenerates the paper's evaluation tables and figures on
// the synthetic benchmark suites (see DESIGN.md for the experiment
// index and the documented substitutions).
//
// Usage:
//
//	experiments -table 1 [-scale 0.02]   # ours vs contest champion
//	experiments -table 2 [-scale 0.02]   # ours vs MLL-Imp / [7] / [9]
//	experiments -table 3 [-scale 0.02]   # post-processing ablation
//	experiments -fig 6   [-scale 0.05]   # matching before/after scatter
//	experiments -bench fft_a_md2 ...     # restrict to one benchmark
//	experiments -shards auto ...         # shard our runs by fence/slab
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mclegal"
	"mclegal/internal/baseline"
	"mclegal/internal/eval"
	"mclegal/internal/maxdisp"
	"mclegal/internal/model"
)

// cfg is the parsed command-line configuration shared by the
// experiment drivers.
type cfg struct {
	scale    float64
	only     string
	workers  int
	shards   int
	progress bool
}

// observer returns the stage observer for our Legalize runs, or nil
// when -progress is off.
func (c cfg) observer() mclegal.StageObserver {
	if !c.progress {
		return nil
	}
	return mclegal.NewJSONObserver(os.Stderr)
}

func (c cfg) keep(name string) bool { return c.only == "" || c.only == name }

// options builds the pipeline options for one of our runs.
func (c cfg) options(extra mclegal.Options) mclegal.Options {
	extra.Workers = c.workers
	extra.Shards = c.shards
	extra.Observer = c.observer()
	return extra
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		table    = fs.Int("table", 0, "paper table to regenerate (1, 2 or 3)")
		fig      = fs.Int("fig", 0, "paper figure to regenerate (6)")
		scale    = fs.Float64("scale", 0.02, "cell-count scale vs published sizes")
		only     = fs.String("bench", "", "restrict to one benchmark name")
		workers  = fs.Int("workers", 0, "MGL workers (0 = all cores)")
		shards   = fs.String("shards", "0", "concurrent fence/slab shards for our runs: a count, auto, or 0 for monolithic")
		progress = fs.Bool("progress", false, "emit per-stage JSON progress events to stderr")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	numShards, err := mclegal.ParseShards(*shards)
	if err != nil {
		log.Print(err)
		return 2
	}
	c := cfg{scale: *scale, only: *only, workers: *workers, shards: numShards, progress: *progress}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}()
	}
	switch {
	case *table == 1:
		table1(stdout, c)
	case *table == 2:
		table2(stdout, c)
	case *table == 3:
		table3(stdout, c)
	case *fig == 6:
		figure6(stdout, c)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func mustLegal(d *mclegal.Design) {
	if v, err := mclegal.Audit(d); err != nil || len(v) > 0 {
		log.Fatalf("%s: illegal result (%v): %v", d.Name, err, v[:min(len(v), 3)])
	}
}

// table1 compares the full routability-aware flow against the contest
// champion stand-in on the ICCAD 2017 suite (paper Table 1).
func table1(w io.Writer, c cfg) {
	fmt.Fprintf(w, "Table 1: ours vs ICCAD 2017 champion stand-in (scale %.3f)\n\n", c.scale)
	fmt.Fprintf(w, "%-20s %7s %5s | %7s %7s | %6s %6s | %5s %5s | %4s %4s | %7s %7s | %7s %7s\n",
		"benchmark", "#cells", "dens", "avg.1st", "avg.our", "max.1st", "max.our",
		"Np.1st", "Np.our", "Ne.1", "Ne.o", "S.1st", "S.ours", "t.1st", "t.ours")
	var rAvg, rMax, rScore, rTime ratio
	for _, b := range mclegal.ContestBenches() {
		if !c.keep(b.Name) {
			continue
		}
		ours := mclegal.ContestDesign(b, c.scale)
		champ := ours.Clone()
		hpwlGP := mclegal.HPWL(ours)

		t0 := time.Now()
		if err := baseline.Champion(champ, c.workers); err != nil {
			log.Fatalf("%s champion: %v", b.Name, err)
		}
		tChamp := time.Since(t0)
		mustLegal(champ)
		resChamp := mclegal.Evaluate(champ, hpwlGP)

		t0 = time.Now()
		resOurs, err := mclegal.Legalize(ours, c.options(mclegal.Options{Routability: true}))
		if err != nil {
			log.Fatalf("%s ours: %v", b.Name, err)
		}
		tOurs := time.Since(t0)
		mustLegal(ours)

		fmt.Fprintf(w, "%-20s %7d %4.0f%% | %7.3f %7.3f | %6.1f %6.1f | %5d %5d | %4d %4d | %7.3f %7.3f | %6.1fs %6.1fs\n",
			b.Name, ours.MovableCount(), b.Density*100,
			resChamp.Metrics.AvgDisp, resOurs.Metrics.AvgDisp,
			resChamp.Metrics.MaxDisp, resOurs.Metrics.MaxDisp,
			resChamp.Violations.Pin(), resOurs.Violations.Pin(),
			resChamp.Violations.EdgeSpacing, resOurs.Violations.EdgeSpacing,
			resChamp.Score, resOurs.Score,
			tChamp.Seconds(), tOurs.Seconds())
		rAvg.add(resChamp.Metrics.AvgDisp, resOurs.Metrics.AvgDisp)
		rMax.add(resChamp.Metrics.MaxDisp, resOurs.Metrics.MaxDisp)
		rScore.add(resChamp.Score, resOurs.Score)
		rTime.add(tChamp.Seconds(), tOurs.Seconds())
	}
	fmt.Fprintf(w, "\nNorm. avg (ours = 1.00): champion avg disp %.2f, max disp %.2f, score %.2f, runtime %.2f\n",
		rAvg.mean(), rMax.mean(), rScore.mean(), rTime.mean())
}

// table2 compares total displacement against the reimplemented
// state-of-the-art baselines on the ISPD suite (paper Table 2).
func table2(w io.Writer, c cfg) {
	fmt.Fprintf(w, "Table 2: total displacement (sites) vs state of the art (scale %.3f)\n\n", c.scale)
	fmt.Fprintf(w, "%-16s %7s %5s | %9s %9s %9s %9s | %6s %6s %6s %6s\n",
		"benchmark", "#cells", "dens", "[12]-Imp", "[7]", "[9]", "ours",
		"t.12", "t.7", "t.9", "t.our")
	var r12, r7, r9, t12, t7, t9 ratio
	for _, b := range mclegal.ISPDBenches() {
		if !c.keep(b.Name) {
			continue
		}
		base := mclegal.ISPDDesign(b, c.scale)

		run := func(f func(*mclegal.Design) error) (float64, float64) {
			d := base.Clone()
			t0 := time.Now()
			if err := f(d); err != nil {
				log.Fatalf("%s: %v", b.Name, err)
			}
			dt := time.Since(t0).Seconds()
			mustLegal(d)
			return eval.Measure(d).TotalDispSites, dt
		}

		d12, s12 := run(func(d *mclegal.Design) error { return baseline.MLLImp(d, c.workers) })
		d7, s7 := run(baseline.AbacusExt)
		d9, s9 := run(baseline.ChenLike)
		dOurs, sOurs := run(func(d *mclegal.Design) error {
			_, err := mclegal.Legalize(d, c.options(mclegal.Options{TotalDisplacement: true}))
			return err
		})

		fmt.Fprintf(w, "%-16s %7d %4.0f%% | %9.0f %9.0f %9.0f %9.0f | %5.1fs %5.1fs %5.1fs %5.1fs\n",
			b.Name, base.MovableCount(), b.Density*100, d12, d7, d9, dOurs, s12, s7, s9, sOurs)
		r12.add(d12, dOurs)
		r7.add(d7, dOurs)
		r9.add(d9, dOurs)
		t12.add(s12, sOurs)
		t7.add(s7, sOurs)
		t9.add(s9, sOurs)
	}
	fmt.Fprintf(w, "\nNorm. avg total disp (ours = 1.00): [12]-Imp %.2f, [7] %.2f, [9] %.2f\n",
		r12.mean(), r7.mean(), r9.mean())
	fmt.Fprintf(w, "Norm. avg runtime   (ours = 1.00): [12]-Imp %.2f, [7] %.2f, [9] %.2f\n",
		t12.mean(), t7.mean(), t9.mean())
}

// table3 isolates the two post-processing stages (paper Table 3).
func table3(w io.Writer, c cfg) {
	fmt.Fprintf(w, "Table 3: effect of the post-processing stages (scale %.3f)\n\n", c.scale)
	fmt.Fprintf(w, "%-20s | %9s %9s | %9s %9s\n",
		"benchmark", "avg.bef", "avg.aft", "max.bef", "max.aft")
	var rAvg, rMax ratio
	for _, b := range mclegal.ContestBenches() {
		if !c.keep(b.Name) {
			continue
		}
		before := mclegal.ContestDesign(b, c.scale)
		after := before.Clone()
		rb, err := mclegal.Legalize(before, c.options(mclegal.Options{
			Routability: true, SkipMaxDisp: true, SkipRefine: true,
		}))
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}
		ra, err := mclegal.Legalize(after, c.options(mclegal.Options{Routability: true}))
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}
		mustLegal(before)
		mustLegal(after)
		fmt.Fprintf(w, "%-20s | %9.3f %9.3f | %9.1f %9.1f\n",
			b.Name, rb.Metrics.AvgDisp, ra.Metrics.AvgDisp,
			rb.Metrics.MaxDisp, ra.Metrics.MaxDisp)
		rAvg.add(rb.Metrics.AvgDisp, ra.Metrics.AvgDisp)
		rMax.add(rb.Metrics.MaxDisp, ra.Metrics.MaxDisp)
	}
	fmt.Fprintf(w, "\nNorm. avg (after = 1.00): before avg %.2f, before max %.2f\n",
		rAvg.mean(), rMax.mean())
}

// figure6 reports the displacement distribution of the largest same-type
// cell group before and after the matching stage (paper Figure 6).
func figure6(w io.Writer, c cfg) {
	name := c.only
	if name == "" {
		name = "des_perf_a_md2"
	}
	var bench mclegal.Bench
	for _, b := range mclegal.ContestBenches() {
		if b.Name == name {
			bench = b
		}
	}
	if bench.Name == "" {
		log.Fatalf("unknown benchmark %q", name)
	}
	d := mclegal.ContestDesign(bench, c.scale)
	if _, err := mclegal.Legalize(d, c.options(mclegal.Options{
		Routability: true, SkipMaxDisp: true, SkipRefine: true,
	})); err != nil {
		log.Fatal(err)
	}
	// Largest (type,fence) group.
	groups := map[[2]int32][]model.CellID{}
	for i := range d.Cells {
		c := &d.Cells[i]
		groups[[2]int32{int32(c.Type), int32(c.Fence)}] =
			append(groups[[2]int32{int32(c.Type), int32(c.Fence)}], model.CellID(i))
	}
	var big []model.CellID
	for _, g := range groups {
		if len(g) > len(big) {
			big = g
		}
	}
	hist := func() (h [8]int, maxD float64) {
		for _, id := range big {
			dd := d.DispRows(id)
			if dd > maxD {
				maxD = dd
			}
			b := int(dd / 5)
			if b > 7 {
				b = 7
			}
			h[b]++
		}
		return
	}
	writeSVG := func(path string) {
		f, err := os.Create(path)
		if err != nil {
			return
		}
		defer f.Close()
		_ = mclegal.WriteSVG(f, d, mclegal.PlotOptions{
			Displacement:  true,
			HighlightType: d.Cells[big[0]].Type,
		})
	}
	hb, maxBefore := hist()
	writeSVG("fig6_before.svg")
	st := maxdisp.Optimize(d, maxdisp.Options{})
	ha, maxAfter := hist()
	writeSVG("fig6_after.svg")

	fmt.Fprintf(w, "Figure 6: matching stage on %s (scale %.3f), largest group: %d cells of type %s\n\n",
		bench.Name, c.scale, len(big), d.Types[d.Cells[big[0]].Type].Name)
	fmt.Fprintf(w, "%-14s %8s %8s\n", "disp (rows)", "before", "after")
	labels := []string{"0-5", "5-10", "10-15", "15-20", "20-25", "25-30", "30-35", "35+"}
	for i, l := range labels {
		fmt.Fprintf(w, "%-14s %8d %8d\n", l, hb[i], ha[i])
	}
	fmt.Fprintf(w, "\nmax displacement in group: %.1f -> %.1f rows\n", maxBefore, maxAfter)
	fmt.Fprintf(w, "matching stats: %d groups solved, %d cells swapped\n", st.Groups, st.Swapped)
	fmt.Fprintln(w, "wrote fig6_before.svg and fig6_after.svg")
}

// ratio accumulates per-benchmark normalized columns.
type ratio struct {
	sum float64
	n   int
}

func (r *ratio) add(other, ours float64) {
	if ours > 0 {
		r.sum += other / ours
		r.n++
	}
}

func (r *ratio) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
