// legalize runs the three-stage legalization pipeline on a .mcl design.
//
// Usage:
//
//	legalize -i design.mcl -o legal.mcl [-routability] [-total] [-workers N]
//	         [-skip-maxdisp] [-skip-refine] [-delta0 10] [-progress text|json]
//	         [-timeout 5m] [-verify] [-recovery strict|fallback|besteffort]
//
// Exit codes:
//
//	0  the result is legal and every stage passed
//	1  legalization failed (no usable result)
//	2  usage error
//	3  a stage failed but a fallback or safe skip repaired the run;
//	   the result is legal
//	4  best-effort recovery was exhausted; the written result is the
//	   best known state but NOT verified legal
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"mclegal"
)

const (
	exitLegal     = 0
	exitFailed    = 1
	exitUsage     = 2
	exitRecovered = 3
	exitPartial   = 4
)

func main() { os.Exit(run()) }

func run() int {
	var (
		in          = flag.String("i", "", "input .mcl design (required)")
		out         = flag.String("o", "", "output .mcl with legal positions (optional)")
		routability = flag.Bool("routability", false, "enable pin/rail-aware legalization")
		total       = flag.Bool("total", false, "optimize total instead of height-averaged displacement")
		workers     = flag.Int("workers", 0, "MGL worker threads (0 = all cores)")
		skipMatch   = flag.Bool("skip-maxdisp", false, "skip the matching stage")
		skipRefine  = flag.Bool("skip-refine", false, "skip the fixed-order refinement")
		delta0      = flag.Float64("delta0", 0, "phi threshold in rows (0 = default)")
		globalPlace = flag.Bool("globalplace", false, "derive GP positions from the netlist first (quadratic placer)")
		progress    = flag.String("progress", "", "per-stage progress to stderr: text or json")
		timeout     = flag.Duration("timeout", 0, "abort legalization after this duration (0 = none)")
		verify      = flag.Bool("verify", false, "audit every stage against a snapshot and roll back on violations")
		recovery    = flag.String("recovery", "strict", "gate-failure policy: strict, fallback or besteffort")
	)
	flag.Parse()

	var observer mclegal.StageObserver
	switch *progress {
	case "":
	case "text":
		observer = mclegal.NewLogObserver(os.Stderr)
	case "json":
		observer = mclegal.NewJSONObserver(os.Stderr)
	default:
		log.Printf("-progress must be text or json, got %q", *progress)
		return exitUsage
	}
	policy, err := mclegal.ParseRecoveryPolicy(*recovery)
	if err != nil {
		log.Print(err)
		return exitUsage
	}
	if *in == "" {
		flag.Usage()
		return exitUsage
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitFailed
	}
	d, err := mclegal.ReadDesign(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitFailed
	}

	if *globalPlace {
		mclegal.GlobalPlace(d, mclegal.GPOptions{})
		fmt.Printf("global placement  HPWL %d\n", mclegal.HPWL(d))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := mclegal.LegalizeContext(ctx, d, mclegal.Options{
		Routability:       *routability,
		TotalDisplacement: *total,
		Workers:           *workers,
		SkipMaxDisp:       *skipMatch,
		SkipRefine:        *skipRefine,
		Delta0Rows:        *delta0,
		Observer:          observer,
		Verify:            *verify,
		Recovery:          policy,
	})
	for _, g := range res.Gates {
		fmt.Fprintf(os.Stderr, "gate: %s\n", g.String())
	}
	if err != nil {
		var ge *mclegal.GateError
		if errors.As(err, &ge) {
			log.Printf("stage %s failed its legality gate: %v", ge.Report.Stage, err)
		} else {
			log.Print(err)
		}
		return exitFailed
	}
	// A partial result is by definition not verified legal; auditing it
	// would only repeat what Status already says.
	if res.Status != mclegal.StatusPartial {
		if v, err := mclegal.Audit(d); err != nil || len(v) > 0 {
			log.Printf("result is not legal (%v): %v", err, v)
			return exitFailed
		}
	}

	fmt.Printf("design           %s (%d cells)\n", d.Name, d.MovableCount())
	fmt.Printf("status           %s\n", res.Status)
	fmt.Printf("avg displacement %.4f rows\n", res.Metrics.AvgDisp)
	fmt.Printf("max displacement %.1f rows\n", res.Metrics.MaxDisp)
	fmt.Printf("total (sites)    %.0f\n", res.Metrics.TotalDispSites)
	fmt.Printf("HPWL             %d -> %d\n", res.HPWLBefore, res.HPWLAfter)
	fmt.Printf("pin violations   %d (short %d, access %d)\n",
		res.Violations.Pin(), res.Violations.PinShort, res.Violations.PinAccess)
	fmt.Printf("edge violations  %d\n", res.Violations.EdgeSpacing)
	fmt.Printf("contest score    %.4f\n", res.Score)
	fmt.Printf("runtime          %v (MGL %v, matching %v, refine %v)\n",
		res.Total, res.MGLTime, res.MaxDispTime, res.RefineTime)

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			return exitFailed
		}
		if err := mclegal.WriteDesign(g, d); err != nil {
			g.Close()
			log.Print(err)
			return exitFailed
		}
		if err := g.Close(); err != nil {
			log.Print(err)
			return exitFailed
		}
	}

	switch res.Status {
	case mclegal.StatusLegal:
		return exitLegal
	case mclegal.StatusRecovered:
		return exitRecovered
	case mclegal.StatusPartial:
		return exitPartial
	}
	return exitLegal
}
