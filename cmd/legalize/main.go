// legalize runs the three-stage legalization pipeline on a .mcl design.
//
// Usage:
//
//	legalize -i design.mcl -o legal.mcl [-routability] [-total] [-workers N]
//	         [-skip-maxdisp] [-skip-refine] [-delta0 10] [-progress text|json]
//	         [-timeout 5m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"mclegal"
)

func main() {
	var (
		in          = flag.String("i", "", "input .mcl design (required)")
		out         = flag.String("o", "", "output .mcl with legal positions (optional)")
		routability = flag.Bool("routability", false, "enable pin/rail-aware legalization")
		total       = flag.Bool("total", false, "optimize total instead of height-averaged displacement")
		workers     = flag.Int("workers", 0, "MGL worker threads (0 = all cores)")
		skipMatch   = flag.Bool("skip-maxdisp", false, "skip the matching stage")
		skipRefine  = flag.Bool("skip-refine", false, "skip the fixed-order refinement")
		delta0      = flag.Float64("delta0", 0, "phi threshold in rows (0 = default)")
		globalPlace = flag.Bool("globalplace", false, "derive GP positions from the netlist first (quadratic placer)")
		progress    = flag.String("progress", "", "per-stage progress to stderr: text or json")
		timeout     = flag.Duration("timeout", 0, "abort legalization after this duration (0 = none)")
	)
	flag.Parse()

	var observer mclegal.StageObserver
	switch *progress {
	case "":
	case "text":
		observer = mclegal.NewLogObserver(os.Stderr)
	case "json":
		observer = mclegal.NewJSONObserver(os.Stderr)
	default:
		log.Fatalf("-progress must be text or json, got %q", *progress)
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	d, err := mclegal.ReadDesign(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *globalPlace {
		mclegal.GlobalPlace(d, mclegal.GPOptions{})
		fmt.Printf("global placement  HPWL %d\n", mclegal.HPWL(d))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := mclegal.LegalizeContext(ctx, d, mclegal.Options{
		Routability:       *routability,
		TotalDisplacement: *total,
		Workers:           *workers,
		SkipMaxDisp:       *skipMatch,
		SkipRefine:        *skipRefine,
		Delta0Rows:        *delta0,
		Observer:          observer,
	})
	if err != nil {
		log.Fatal(err)
	}
	if v, err := mclegal.Audit(d); err != nil || len(v) > 0 {
		log.Fatalf("result is not legal (%v): %v", err, v)
	}

	fmt.Printf("design           %s (%d cells)\n", d.Name, d.MovableCount())
	fmt.Printf("avg displacement %.4f rows\n", res.Metrics.AvgDisp)
	fmt.Printf("max displacement %.1f rows\n", res.Metrics.MaxDisp)
	fmt.Printf("total (sites)    %.0f\n", res.Metrics.TotalDispSites)
	fmt.Printf("HPWL             %d -> %d\n", res.HPWLBefore, res.HPWLAfter)
	fmt.Printf("pin violations   %d (short %d, access %d)\n",
		res.Violations.Pin(), res.Violations.PinShort, res.Violations.PinAccess)
	fmt.Printf("edge violations  %d\n", res.Violations.EdgeSpacing)
	fmt.Printf("contest score    %.4f\n", res.Score)
	fmt.Printf("runtime          %v (MGL %v, matching %v, refine %v)\n",
		res.Total, res.MGLTime, res.MaxDispTime, res.RefineTime)

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		if err := mclegal.WriteDesign(g, d); err != nil {
			log.Fatal(err)
		}
	}
}
