// legalize runs the three-stage legalization pipeline on a .mcl design.
//
// Usage:
//
//	legalize -i design.mcl -o legal.mcl [-routability] [-total] [-workers N]
//	         [-shards N|auto] [-skip-maxdisp] [-skip-refine] [-delta0 10]
//	         [-progress text|json] [-timeout 5m] [-verify]
//	         [-recovery strict|fallback|besteffort]
//
// Exit codes:
//
//	0  the result is legal and every stage passed
//	1  legalization failed (no usable result)
//	2  usage error
//	3  a stage failed but a fallback or safe skip repaired the run;
//	   the result is legal
//	4  best-effort recovery was exhausted; the written result is the
//	   best known state but NOT verified legal
//	5  the -timeout budget expired mid-run (deadline exceeded) — a
//	   distinct failure class from 1: the input may be fine, the run
//	   just needs more time
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mclegal"
)

const (
	exitLegal     = 0
	exitFailed    = 1
	exitUsage     = 2
	exitRecovered = 3
	exitPartial   = 4
	exitDeadline  = 5
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("legalize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("i", "", "input .mcl design (required)")
		out         = fs.String("o", "", "output .mcl with legal positions (optional)")
		routability = fs.Bool("routability", false, "enable pin/rail-aware legalization")
		total       = fs.Bool("total", false, "optimize total instead of height-averaged displacement")
		workers     = fs.Int("workers", 0, "MGL worker threads (0 = all cores)")
		shards      = fs.String("shards", "0", "concurrent fence/slab shards: a count, auto, or 0 for the monolithic pipeline")
		skipMatch   = fs.Bool("skip-maxdisp", false, "skip the matching stage")
		skipRefine  = fs.Bool("skip-refine", false, "skip the fixed-order refinement")
		delta0      = fs.Float64("delta0", 0, "phi threshold in rows (0 = default)")
		globalPlace = fs.Bool("globalplace", false, "derive GP positions from the netlist first (quadratic placer)")
		progress    = fs.String("progress", "", "per-stage progress to stderr: text or json")
		timeout     = fs.Duration("timeout", 0, "abort legalization after this duration (0 = none)")
		verify      = fs.Bool("verify", false, "audit every stage against a snapshot and roll back on violations")
		recovery    = fs.String("recovery", "strict", "gate-failure policy: strict, fallback or besteffort")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lg := log.New(stderr, "", 0)

	var observer mclegal.StageObserver
	switch *progress {
	case "":
	case "text":
		observer = mclegal.NewLogObserver(stderr)
	case "json":
		observer = mclegal.NewJSONObserver(stderr)
	default:
		lg.Printf("-progress must be text or json, got %q", *progress)
		return exitUsage
	}
	policy, err := mclegal.ParseRecoveryPolicy(*recovery)
	if err != nil {
		lg.Print(err)
		return exitUsage
	}
	numShards, err := mclegal.ParseShards(*shards)
	if err != nil {
		lg.Print(err)
		return exitUsage
	}
	if *in == "" {
		fs.Usage()
		return exitUsage
	}

	f, err := os.Open(*in)
	if err != nil {
		lg.Print(err)
		return exitFailed
	}
	d, err := mclegal.ReadDesign(f)
	f.Close()
	if err != nil {
		lg.Print(err)
		return exitFailed
	}

	if *globalPlace {
		mclegal.GlobalPlace(d, mclegal.GPOptions{})
		fmt.Fprintf(stdout, "global placement  HPWL %d\n", mclegal.HPWL(d))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := mclegal.LegalizeContext(ctx, d, mclegal.Options{
		Routability:       *routability,
		TotalDisplacement: *total,
		Workers:           *workers,
		Shards:            numShards,
		SkipMaxDisp:       *skipMatch,
		SkipRefine:        *skipRefine,
		Delta0Rows:        *delta0,
		Observer:          observer,
		Verify:            *verify,
		Recovery:          policy,
	})
	for _, g := range res.Gates {
		fmt.Fprintf(stderr, "gate: %s\n", g.String())
	}
	if err != nil {
		var de *mclegal.DeadlineError
		if errors.As(err, &de) {
			lg.Printf("deadline exceeded: -timeout %v expired after %v of work", *timeout, de.Elapsed)
			return exitDeadline
		}
		var ge *mclegal.GateError
		if errors.As(err, &ge) {
			lg.Printf("stage %s failed its legality gate: %v", ge.Report.Stage, err)
		} else {
			lg.Print(err)
		}
		return exitFailed
	}
	// A partial result is by definition not verified legal; auditing it
	// would only repeat what Status already says.
	if res.Status != mclegal.StatusPartial {
		if v, err := mclegal.Audit(d); err != nil || len(v) > 0 {
			lg.Printf("result is not legal (%v): %v", err, v)
			return exitFailed
		}
	}

	fmt.Fprintf(stdout, "design           %s (%d cells)\n", d.Name, d.MovableCount())
	fmt.Fprintf(stdout, "status           %s\n", res.Status)
	if len(res.Shards) > 0 {
		fmt.Fprintf(stdout, "shards           %d regions, %d concurrent\n", len(res.Shards), numShards)
		for _, sh := range res.Shards {
			fmt.Fprintf(stdout, "  %-14s %d cells, %s\n", sh.Name, sh.Cells, sh.Status)
		}
	}
	fmt.Fprintf(stdout, "avg displacement %.4f rows\n", res.Metrics.AvgDisp)
	fmt.Fprintf(stdout, "max displacement %.1f rows\n", res.Metrics.MaxDisp)
	fmt.Fprintf(stdout, "total (sites)    %.0f\n", res.Metrics.TotalDispSites)
	fmt.Fprintf(stdout, "HPWL             %d -> %d\n", res.HPWLBefore, res.HPWLAfter)
	fmt.Fprintf(stdout, "pin violations   %d (short %d, access %d)\n",
		res.Violations.Pin(), res.Violations.PinShort, res.Violations.PinAccess)
	fmt.Fprintf(stdout, "edge violations  %d\n", res.Violations.EdgeSpacing)
	fmt.Fprintf(stdout, "contest score    %.4f\n", res.Score)
	fmt.Fprintf(stdout, "runtime          %v (MGL %v, matching %v, refine %v)\n",
		res.Total, res.MGLTime, res.MaxDispTime, res.RefineTime)

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			lg.Print(err)
			return exitFailed
		}
		if err := mclegal.WriteDesign(g, d); err != nil {
			g.Close()
			lg.Print(err)
			return exitFailed
		}
		if err := g.Close(); err != nil {
			lg.Print(err)
			return exitFailed
		}
	}

	switch res.Status {
	case mclegal.StatusLegal:
		return exitLegal
	case mclegal.StatusRecovered:
		return exitRecovered
	case mclegal.StatusPartial:
		return exitPartial
	}
	return exitLegal
}
