package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mclegal"
)

// writeBench generates a small multi-fence design and writes it as a
// .mcl file for the CLI to consume.
func writeBench(t *testing.T) string {
	t.Helper()
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name: "cli", Seed: 31, Counts: [4]int{500, 50, 12, 4},
		Density: 0.55, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.3,
	})
	path := filepath.Join(t.TempDir(), "cli.mcl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mclegal.WriteDesign(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range [][]string{
		{}, // missing -i
		{"-i", "x.mcl", "-progress", "bogus"},
		{"-i", "x.mcl", "-recovery", "bogus"},
		{"-i", "x.mcl", "-shards", "many"},
		{"-i", "x.mcl", "-shards", "-2"},
		{"-no-such-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(tc, &out, &errb); code != exitUsage {
			t.Errorf("run(%q) = %d, want %d (stderr: %s)", tc, code, exitUsage, errb.String())
		}
	}
}

func TestRunMissingInputFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-i", "/no/such/file.mcl"}, &out, &errb); code != exitFailed {
		t.Errorf("run = %d, want %d", code, exitFailed)
	}
}

// A sharded CLI run must succeed, report the per-shard breakdown, and
// write the same placement as a run with a different shard count.
func TestRunShardedMatchesAcrossCounts(t *testing.T) {
	in := writeBench(t)
	dir := t.TempDir()

	outFile := func(shards string) string {
		path := filepath.Join(dir, "out"+shards+".mcl")
		var out, errb bytes.Buffer
		code := run([]string{"-i", in, "-o", path, "-shards", shards, "-workers", "1"}, &out, &errb)
		if code != exitLegal {
			t.Fatalf("-shards %s: exit %d\nstdout: %s\nstderr: %s", shards, code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "status           legal") {
			t.Errorf("-shards %s: no legal status in output:\n%s", shards, out.String())
		}
		if !strings.Contains(out.String(), "shards           ") {
			t.Errorf("-shards %s: missing shard breakdown:\n%s", shards, out.String())
		}
		return path
	}

	a, err := os.ReadFile(outFile("1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outFile("3"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("-shards 1 and -shards 3 wrote different placements")
	}
}

// The monolithic path must not print a shard breakdown.
func TestRunMonolithicHasNoShardSection(t *testing.T) {
	in := writeBench(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-i", in, "-workers", "1"}, &out, &errb); code != exitLegal {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "shards           ") {
		t.Errorf("monolithic run printed a shard section:\n%s", out.String())
	}
}

// -timeout expiry is a distinct outcome from generic failure: the CLI
// must report it on the dedicated deadline exit code.
func TestRunTimeoutExitsDeadline(t *testing.T) {
	path := writeBench(t)
	var out, errb bytes.Buffer
	code := run([]string{"-i", path, "-timeout", "1ns"}, &out, &errb)
	if code != exitDeadline {
		t.Fatalf("run = %d, want %d (stderr: %s)", code, exitDeadline, errb.String())
	}
	if !strings.Contains(errb.String(), "deadline exceeded") {
		t.Errorf("stderr %q does not name the deadline", errb.String())
	}
}
