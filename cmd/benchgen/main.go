// benchgen generates synthetic legalization benchmarks in the .mcl text
// format: either a parameterized instance or one of the paper's suites.
//
// Usage:
//
//	benchgen -cells 5000 -density 0.7 -fences 2 -routability -o design.mcl
//	benchgen -suite contest -name fft_a_md2 -scale 0.1 -o fft_a_md2.mcl
//	benchgen -suite ispd -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mclegal"
)

func main() {
	var (
		out         = flag.String("o", "", "output file (default stdout)")
		suite       = flag.String("suite", "", "generate from a paper suite: contest | ispd")
		name        = flag.String("name", "", "benchmark name within the suite")
		list        = flag.Bool("list", false, "list the suite's benchmarks and exit")
		scale       = flag.Float64("scale", 0.1, "cell-count scale for suite benchmarks")
		seed        = flag.Int64("seed", 1, "generator seed")
		cells       = flag.Int("cells", 2000, "single-height cell count")
		dbl         = flag.Int("h2", -1, "double-height cells (-1: cells/10)")
		tpl         = flag.Int("h3", -1, "triple-height cells (-1: cells/50)")
		quad        = flag.Int("h4", -1, "quadruple-height cells (-1: cells/100)")
		density     = flag.Float64("density", 0.6, "target utilization")
		fences      = flag.Int("fences", 0, "number of fence regions")
		ioPins      = flag.Int("iopins", 0, "number of IO pins")
		routability = flag.Bool("routability", false, "add P/G rails and rail-sensitive pins")
	)
	flag.Parse()

	var d *mclegal.Design
	switch *suite {
	case "contest", "ispd":
		benches := mclegal.ContestBenches()
		if *suite == "ispd" {
			benches = mclegal.ISPDBenches()
		}
		if *list {
			for _, b := range benches {
				fmt.Printf("%-20s cells=%7d density=%.1f%% fences=%d\n",
					b.Name, b.Counts[0]+b.Counts[1]+b.Counts[2]+b.Counts[3],
					b.Density*100, b.Fences)
			}
			return
		}
		var found bool
		for _, b := range benches {
			if b.Name == *name {
				if *suite == "contest" {
					d = mclegal.ContestDesign(b, *scale)
				} else {
					d = mclegal.ISPDDesign(b, *scale)
				}
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("benchmark %q not in suite %q (use -list)", *name, *suite)
		}
	case "":
		c2, c3, c4 := *dbl, *tpl, *quad
		if c2 < 0 {
			c2 = *cells / 10
		}
		if c3 < 0 {
			c3 = *cells / 50
		}
		if c4 < 0 {
			c4 = *cells / 100
		}
		d = mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
			Name:        "generated",
			Seed:        *seed,
			Counts:      [4]int{*cells, c2, c3, c4},
			Density:     *density,
			NumFences:   *fences,
			FenceFrac:   0.6,
			NetFrac:     0.5,
			IOPins:      *ioPins,
			Routability: *routability,
		})
	default:
		log.Fatalf("unknown suite %q", *suite)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := mclegal.WriteDesign(w, d); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d cells, %dx%d sites\n",
		d.Name, len(d.Cells), d.Tech.NumSites, d.Tech.NumRows)
}
