package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway Go module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/vetfix\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// dirty has two exhaustive violations on ascending lines so the test
// can assert the stable position ordering of both output modes.
const dirty = `package p

const (
	A = 1
	B = 2
	C = 3
)

func First(x int) int {
	switch x {
	case A:
		return 1
	case B:
		return 2
	}
	return 0
}

func Second(x int) int {
	switch x {
	case A:
		return 1
	}
	return 0
}
`

func TestRunJSONViolations(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirty})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-json", "./..."}, &buf); code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), buf.String())
	}
	for i, d := range diags {
		if d.Analyzer != "exhaustive" {
			t.Errorf("diag %d analyzer = %q, want exhaustive", i, d.Analyzer)
		}
		if filepath.Base(d.File) != "p.go" || d.Line == 0 || d.Column == 0 {
			t.Errorf("diag %d position = %s:%d:%d, want a real p.go position", i, d.File, d.Line, d.Column)
		}
		if !strings.Contains(d.Message, "missing cases") {
			t.Errorf("diag %d message = %q, want a missing-cases message", i, d.Message)
		}
	}
	if len(diags) == 2 && diags[0].Line >= diags[1].Line {
		t.Errorf("diagnostics out of position order: line %d before line %d", diags[0].Line, diags[1].Line)
	}
}

func TestRunTextViolations(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirty})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"./..."}, &buf); code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d text lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, ": exhaustive: ") {
			t.Errorf("line %q missing the analyzer label", line)
		}
	}
}

func TestRunJSONClean(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n\nfunc Fine() int { return 1 }\n"})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-json", "./..."}, &buf); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestRunList(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, name := range []string{
		"aliasleak", "ctxflow", "exhaustive", "floatcmp", "goleak", "lockguard",
		"maporder", "noalloc", "nowallclock", "scratchescape", "sharedwrite",
		"snapshotsafe", "typederr", "writeset",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 14 {
		t.Errorf("-list printed %d lines, want 14:\n%s", len(lines), out)
	}
}

func TestRunExplain(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-explain", "writeset"}, &buf); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"Invariant:", "Scope:", "internal/mgl", "internal/serve",
		"Directive:", "//mclegal:writeset", "Example:",
		"a bare directive is itself a finding",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain writeset output missing %q:\n%s", want, out)
		}
	}

	// An analyzer with no Scope list explains as applying everywhere.
	buf.Reset()
	if code := run([]string{"-explain", "exhaustive"}, &buf); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "every package mclegal-vet loads") {
		t.Errorf("-explain exhaustive did not describe its universal scope:\n%s", buf.String())
	}

	if code := run([]string{"-explain", "nonesuch"}, io.Discard); code != 2 {
		t.Errorf("-explain nonesuch exit code = %d, want 2", code)
	}
}

func TestRunFilter(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": dirty})
	t.Chdir(root)

	// The violations are exhaustive's; filtering to maporder must turn
	// the run clean without changing exit-code semantics.
	var buf bytes.Buffer
	if code := run([]string{"-run", "maporder", "./..."}, &buf); code != 0 {
		t.Fatalf("filtered-clean exit code = %d, want 0; output:\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-run", "exhaustive,maporder", "./..."}, &buf); code != 1 {
		t.Fatalf("filtered-dirty exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	if got := strings.Count(buf.String(), ": exhaustive: "); got != 2 {
		t.Errorf("filtered run found %d exhaustive findings, want 2:\n%s", got, buf.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-run", "nonesuch", "./..."}, &buf); code != 2 {
		t.Fatalf("exit code = %d, want 2 for an unknown analyzer name", code)
	}
}

// multiDirty sits at an internal/mgl-suffixed import path so the
// deterministic-core analyzers scope onto it: one early nowallclock
// line, one line where maporder and nowallclock both diagnose, and one
// late maporder line — enough to assert the stable global position
// sort across analyzers.
const multiDirty = `package mgl

import "time"

func Wall() int64 {
	return time.Now().Unix()
}

func SameLine(m map[int]int) int {
	total := 0
	for k := range m { total = total + k + int(time.Now().Unix()) }
	return total
}

func OrderDep(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

func TestRunJSONMultiAnalyzer(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/mgl/m.go": multiDirty})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"-json", "./..."}, &buf); code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["nowallclock"] != 2 || byAnalyzer["maporder"] != 2 {
		t.Fatalf("diagnostics per analyzer = %v, want 2 nowallclock and 2 maporder:\n%s", byAnalyzer, buf.String())
	}
	// Two analyzers must diagnose the SameLine range statement's line.
	lineCount := make(map[int]map[string]bool)
	for _, d := range diags {
		if lineCount[d.Line] == nil {
			lineCount[d.Line] = make(map[string]bool)
		}
		lineCount[d.Line][d.Analyzer] = true
	}
	shared := false
	for _, analyzers := range lineCount {
		if analyzers["maporder"] && analyzers["nowallclock"] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("no line diagnosed by both analyzers:\n%s", buf.String())
	}
	// Global order: (file, line, column, analyzer), across analyzers.
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ordered := a.File < b.File ||
			(a.File == b.File && (a.Line < b.Line ||
				(a.Line == b.Line && (a.Column < b.Column ||
					(a.Column == b.Column && a.Analyzer <= b.Analyzer)))))
		if !ordered {
			t.Errorf("diagnostics %d and %d out of global position order:\n%s", i-1, i, buf.String())
		}
	}
}

func TestRunBadPattern(t *testing.T) {
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	t.Chdir(root)

	var buf bytes.Buffer
	if code := run([]string{"./nonexistent"}, &buf); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a bad package argument", code)
	}
}
