// Command mclegal-vet runs the in-tree analyzer suite
// (internal/analysis) over the module: cancellation plumbing (ctxflow),
// enum coverage (exhaustive), determinism (maporder, nowallclock),
// aliasing (scratchescape, aliasleak), numeric (floatcmp), hot-path
// allocation (noalloc), error-taxonomy (typederr), concurrency (goleak,
// lockguard, sharedwrite), and write-effect (writeset, snapshotsafe)
// invariants. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	mclegal-vet [-json] [-run analyzer,...] [packages]
//	mclegal-vet -list
//	mclegal-vet -explain analyzer
//
// Package arguments are import paths of this module or the ./... and
// ./dir/... wildcard forms; with no arguments it checks ./... from the
// working directory's module root. All named packages are loaded as
// one program, so cross-package analyses (the noalloc call-graph
// proof) see every function body named on the command line.
//
// -run restricts the run to a comma-separated subset of analyzers (an
// unknown name is a usage error), so CI jobs and golden tests can
// target one analyzer without paying for the rest; exit-code and -json
// behavior are unchanged. -list prints each analyzer's name and
// one-line doc and exits 0. -explain prints one analyzer's invariant,
// the package scope it applies to, and its suppression/declaration
// directive with a justified example, then exits 0.
//
// With -json, diagnostics are emitted as a single JSON array of
// {file, line, column, analyzer, message} objects in the same stable
// order as the text output (position, then analyzer name); an empty
// run prints []. Exit codes are identical in both modes: 1 if any
// diagnostic is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mclegal/internal/analysis"
	"mclegal/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("mclegal-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer names and docs, then exit")
	explain := fs.String("explain", "", "print one analyzer's invariant, scope and directive, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, doc)
		}
		return 0
	}
	if *explain != "" {
		for _, a := range analyzers {
			if a.Name == *explain {
				explainAnalyzer(stdout, a)
				return 0
			}
		}
		fmt.Fprintf(os.Stderr, "mclegal-vet: unknown analyzer %q (run mclegal-vet -list)\n", *explain)
		return 2
	}
	if *runFilter != "" {
		byName := make(map[string]*framework.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFilter, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mclegal-vet: unknown analyzer %q (run mclegal-vet -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	modRoot, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclegal-vet:", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	paths, err := expandPatterns(modRoot, modPath, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclegal-vet:", err)
		return 2
	}

	loader := framework.NewLoader(modPath, modRoot)
	prog, err := framework.LoadProgram(loader, paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mclegal-vet: %v\n", err)
		return 2
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mclegal-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			pos := prog.Fset().Position(d.Pos)
			out = append(out, jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mclegal-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", prog.Fset().Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// explainAnalyzer prints one analyzer's contract from its metadata:
// the invariant it enforces, the package scope the invariant applies
// to, and the //mclegal directive it honours, with one justified use.
func explainAnalyzer(w io.Writer, a *framework.Analyzer) {
	fmt.Fprintf(w, "%s\n\nInvariant:\n  %s\n", a.Name, a.Doc)
	fmt.Fprintf(w, "\nScope:\n")
	if len(a.Scope) == 0 {
		fmt.Fprintf(w, "  every package mclegal-vet loads\n")
	} else {
		for _, p := range a.Scope {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
	if a.Directive != "" {
		fmt.Fprintf(w, "\nDirective:\n  //mclegal:%s <why>  (a bare directive is itself a finding)\n", a.Directive)
	}
	if a.Example != "" {
		fmt.Fprintf(w, "\nExample:\n  %s\n", a.Example)
	}
}

// findModule walks up from the working directory to the enclosing
// go.mod and reads its module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns package arguments into a sorted list of module
// import paths. Supported forms: explicit import paths ("mclegal/...",
// "internal/mgl"), relative paths ("./internal/mgl"), and the
// recursive wildcards "./..." and "dir/...".
func expandPatterns(modRoot, modPath string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		rel, recursive := normalizePattern(modPath, arg)
		if !recursive {
			if containsGoPackage(filepath.Join(modRoot, filepath.FromSlash(rel))) {
				add(joinImport(modPath, rel))
				continue
			}
			return nil, fmt.Errorf("no Go package in %q", arg)
		}
		base := filepath.Join(modRoot, filepath.FromSlash(rel))
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if containsGoPackage(p) {
				sub, err := filepath.Rel(modRoot, p)
				if err != nil {
					return err
				}
				add(joinImport(modPath, filepath.ToSlash(sub)))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expanding %q: %w", arg, err)
		}
	}
	sort.Strings(out)
	return out, nil
}

// normalizePattern reduces one argument to a module-relative directory
// and whether it ends in the /... wildcard.
func normalizePattern(modPath, arg string) (rel string, recursive bool) {
	if arg == "./..." || arg == "..." {
		return ".", true
	}
	if rest, ok := strings.CutSuffix(arg, "/..."); ok {
		rel, _ := normalizePattern(modPath, rest)
		return rel, true
	}
	arg = strings.TrimPrefix(arg, "./")
	if arg == "" || arg == "." {
		return ".", false
	}
	if arg == modPath {
		return ".", false
	}
	if rest, ok := strings.CutPrefix(arg, modPath+"/"); ok {
		return rest, false
	}
	return arg, false
}

// containsGoPackage reports whether dir holds buildable non-test Go
// files under the host build constraints.
func containsGoPackage(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles)+len(bp.CgoFiles) > 0
}

func joinImport(modPath, rel string) string {
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
