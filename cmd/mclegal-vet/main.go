// Command mclegal-vet runs the in-tree analyzer suite
// (internal/analysis) over the module: determinism (maporder,
// nowallclock), aliasing (scratchescape), numeric (floatcmp), and
// error-taxonomy (typederr) invariants. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	mclegal-vet [packages]
//
// Package arguments are import paths of this module or the ./... and
// ./dir/... wildcard forms; with no arguments it checks ./... from the
// working directory's module root. Exits 1 if any diagnostic is
// reported, 2 on usage or load errors.
package main

import (
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mclegal/internal/analysis"
	"mclegal/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	modRoot, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclegal-vet:", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	paths, err := expandPatterns(modRoot, modPath, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclegal-vet:", err)
		return 2
	}

	loader := framework.NewLoader(modPath, modRoot)
	analyzers := analysis.All()
	exit := 0
	for _, path := range paths {
		pkg, err := loader.LoadTarget(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mclegal-vet: %v\n", err)
			exit = 2
			continue
		}
		diags, err := framework.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mclegal-vet: %s: %v\n", path, err)
			exit = 2
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// findModule walks up from the working directory to the enclosing
// go.mod and reads its module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns package arguments into a sorted list of module
// import paths. Supported forms: explicit import paths ("mclegal/...",
// "internal/mgl"), relative paths ("./internal/mgl"), and the
// recursive wildcards "./..." and "dir/...".
func expandPatterns(modRoot, modPath string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		rel, recursive := normalizePattern(modPath, arg)
		if !recursive {
			if containsGoPackage(filepath.Join(modRoot, filepath.FromSlash(rel))) {
				add(joinImport(modPath, rel))
				continue
			}
			return nil, fmt.Errorf("no Go package in %q", arg)
		}
		base := filepath.Join(modRoot, filepath.FromSlash(rel))
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if containsGoPackage(p) {
				sub, err := filepath.Rel(modRoot, p)
				if err != nil {
					return err
				}
				add(joinImport(modPath, filepath.ToSlash(sub)))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expanding %q: %w", arg, err)
		}
	}
	sort.Strings(out)
	return out, nil
}

// normalizePattern reduces one argument to a module-relative directory
// and whether it ends in the /... wildcard.
func normalizePattern(modPath, arg string) (rel string, recursive bool) {
	if arg == "./..." || arg == "..." {
		return ".", true
	}
	if rest, ok := strings.CutSuffix(arg, "/..."); ok {
		rel, _ := normalizePattern(modPath, rest)
		return rel, true
	}
	arg = strings.TrimPrefix(arg, "./")
	if arg == "" || arg == "." {
		return ".", false
	}
	if arg == modPath {
		return ".", false
	}
	if rest, ok := strings.CutPrefix(arg, modPath+"/"); ok {
		return rest, false
	}
	return arg, false
}

// containsGoPackage reports whether dir holds buildable non-test Go
// files under the host build constraints.
func containsGoPackage(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles)+len(bp.CgoFiles) > 0
}

func joinImport(modPath, rel string) string {
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
