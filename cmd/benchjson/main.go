// benchjson runs the MGL throughput sweep programmatically (via
// testing.Benchmark) and writes a machine-readable trajectory file so
// perf changes can be compared across commits without parsing `go test
// -bench` text output.
//
// Usage:
//
//	benchjson [-out BENCH_mgl.json] [-scale 0.01] [-workers 1,2,4,8]
//
// The recorded environment (numcpu, gomaxprocs, goversion) travels with
// the numbers: speedup figures are only meaningful relative to the
// machine that produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mclegal"
)

var (
	out     = flag.String("out", "BENCH_mgl.json", "output file (- for stdout)")
	scale   = flag.Float64("scale", 0.01, "cell-count scale vs published sizes")
	workers = flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep")
)

type run struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec"`
	SpeedupVsW1 float64 `json:"speedup_vs_w1"`
}

type report struct {
	Bench      string  `json:"bench"`
	Design     string  `json:"design"`
	Scale      float64 `json:"scale"`
	Cells      int     `json:"cells"`
	NumCPU     int     `json:"numcpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GoVersion  string  `json:"goversion"`
	Runs       []run   `json:"runs"`
}

func main() {
	flag.Parse()
	log.SetFlags(0)

	var ws []int
	for _, f := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		log.Fatal("-workers is empty")
	}

	// Same instance as BenchmarkMGLThroughput: fft_a at bench scale,
	// MGL stage only (post-processing excluded from the measurement).
	bench := mclegal.ISPDBenches()[6] // fft_a
	base := mclegal.ISPDDesign(bench, *scale)

	rep := report{
		Bench:      "MGLThroughput",
		Design:     bench.Name,
		Scale:      *scale,
		Cells:      base.MovableCount(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	var nsW1 int64
	for _, w := range ws {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				if _, err := mclegal.Legalize(d, mclegal.Options{
					TotalDisplacement: true, Workers: w,
					SkipMaxDisp: true, SkipRefine: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		if nsW1 == 0 {
			// Baseline for the speedup column: the first (serial) run.
			nsW1 = ns
		}
		rr := run{
			Workers:     w,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			CellsPerSec: float64(rep.Cells) * 1e9 / float64(ns),
			SpeedupVsW1: float64(nsW1) / float64(ns),
		}
		rep.Runs = append(rep.Runs, rr)
		log.Printf("workers=%d  %12d ns/op  %8d allocs/op  %10.0f cells/sec  %.2fx",
			w, rr.NsPerOp, rr.AllocsPerOp, rr.CellsPerSec, rr.SpeedupVsW1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s, %d cells, %d CPUs)\n", *out, rep.Design, rep.Cells, rep.NumCPU)
}
