// benchjson runs the performance sweeps programmatically (via
// testing.Benchmark) and writes machine-readable trajectory files so
// perf changes can be compared across commits without parsing `go test
// -bench` text output.
//
// Usage:
//
//	benchjson [-out BENCH_mgl.json] [-scale 0.01] [-workers 1,2,4,8]
//	benchjson -mode shard [-out BENCH_shard.json] [-shards 1,2,4]
//	benchjson -mode serve [-out BENCH_serve.json]
//	benchjson -mode mcf [-out BENCH_mcf.json] [-smoke]
//	benchjson -mode vet [-out BENCH_vet.json]
//
// The default mode sweeps MGL worker counts on a fixed instance; the
// shard mode sweeps the shard concurrency of the fence/slab-sharded
// pipeline on a multi-fence instance and records the per-shard
// wall-clock breakdown of the plan; the serve mode profiles the
// legalization server end to end over an in-process HTTP server and
// records per-endpoint request-latency percentiles (p50/p90/p99/max);
// the mcf mode sweeps the min-cost-flow solver layer (pivot rules,
// solver reuse, warm-start resolves) over the benchmark graph families
// with cross-solver validation (see mcf.go); the vet mode times the
// full fourteen-analyzer mclegal-vet suite over the scoped program and
// records each analyzer's incremental wall time and diagnostic count
// (see vet.go).
//
// The recorded environment (numcpu, per-run gomaxprocs, goversion)
// travels with the numbers: speedup figures are only meaningful
// relative to the machine that produced them, and GOMAXPROCS is read
// at measurement time of every run, not once at startup, so a sweep
// that adjusts it mid-flight cannot misattribute its results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mclegal"
)

type mglRun struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"`
	// GOMAXPROCS is sampled when this run is measured.
	GOMAXPROCS  int     `json:"gomaxprocs"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec"`
	SpeedupVsW1 float64 `json:"speedup_vs_w1"`
}

type report struct {
	Bench     string   `json:"bench"`
	Design    string   `json:"design"`
	Scale     float64  `json:"scale"`
	Cells     int      `json:"cells"`
	NumCPU    int      `json:"numcpu"`
	GoVersion string   `json:"goversion"`
	Runs      []mglRun `json:"runs"`
}

// shardDetail is one plan region's share of a sharded run.
type shardDetail struct {
	Name  string `json:"name"`
	Cells int    `json:"cells"`
	// StageNs sums the region's stage durations (its wall-clock work,
	// excluding merge and coordination).
	StageNs int64 `json:"stage_ns"`
}

type shardRun struct {
	Shards      int     `json:"shards"`
	NsPerOp     int64   `json:"ns_per_op"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	CellsPerSec float64 `json:"cells_per_sec"`
	SpeedupVsS1 float64 `json:"speedup_vs_s1"`
	// Regions is the plan size (identical across shard counts: the
	// decomposition is a function of the design, not the concurrency).
	Regions int `json:"regions"`
	// SumShardNs and MaxShardNs bound the scaling: the sum is the
	// serial work, the max is the critical path a perfectly parallel
	// run cannot beat.
	SumShardNs int64         `json:"sum_shard_ns"`
	MaxShardNs int64         `json:"max_shard_ns"`
	Detail     []shardDetail `json:"detail"`
}

type shardReport struct {
	Bench     string     `json:"bench"`
	Design    string     `json:"design"`
	Scale     float64    `json:"scale"`
	Cells     int        `json:"cells"`
	NumCPU    int        `json:"numcpu"`
	GoVersion string     `json:"goversion"`
	Runs      []shardRun `json:"runs"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		mode    = fs.String("mode", "mgl", "sweep to run: mgl (worker counts) or shard (shard concurrency)")
		out     = fs.String("out", "", "output file (- for stdout; default BENCH_<mode>.json)")
		scale   = fs.Float64("scale", 0.01, "cell-count scale vs published sizes")
		workers = fs.String("workers", "1,2,4,8", "comma-separated worker counts to sweep (mgl mode)")
		shards  = fs.String("shards", "1,2,4", "comma-separated shard concurrencies to sweep (shard mode)")
		smoke   = fs.Bool("smoke", false, "shrink instances and run one iteration per config (mcf mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log.SetFlags(0)

	var buf []byte
	var summary string
	switch *mode {
	case "mgl":
		if *out == "" {
			*out = "BENCH_mgl.json"
		}
		counts, err := parseCounts(*workers)
		if err != nil {
			log.Printf("-workers: %v", err)
			return 2
		}
		rep := sweepMGL(counts, *scale)
		buf = marshal(rep)
		summary = fmt.Sprintf("%s, %d cells, %d CPUs", rep.Design, rep.Cells, rep.NumCPU)
	case "shard":
		if *out == "" {
			*out = "BENCH_shard.json"
		}
		counts, err := parseCounts(*shards)
		if err != nil {
			log.Printf("-shards: %v", err)
			return 2
		}
		rep := sweepShards(counts, *scale)
		buf = marshal(rep)
		summary = fmt.Sprintf("%s, %d cells, %d CPUs", rep.Design, rep.Cells, rep.NumCPU)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		rep := sweepServe(*scale)
		buf = marshal(rep)
		summary = fmt.Sprintf("%s, %d cells, %d CPUs", rep.Design, rep.Cells, rep.NumCPU)
	case "mcf":
		if *out == "" {
			*out = "BENCH_mcf.json"
		}
		rep := sweepMCF(*smoke)
		buf = marshal(rep)
		summary = fmt.Sprintf("%d families, %d CPUs", len(rep.Families), rep.NumCPU)
	case "vet":
		if *out == "" {
			*out = "BENCH_vet.json"
		}
		rep := sweepVet()
		buf = marshal(rep)
		summary = fmt.Sprintf("%d analyzers over %d packages, %d CPUs", len(rep.Runs), rep.Packages, rep.NumCPU)
	default:
		log.Printf("-mode must be mgl, shard, serve, mcf or vet, got %q", *mode)
		return 2
	}

	if *out == "-" {
		stdout.Write(buf)
		return 0
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Print(err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%s)\n", *out, summary)
	return 0
}

func parseCounts(list string) ([]int, error) {
	var ns []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		ns = append(ns, n)
	}
	return ns, nil
}

func marshal(v any) []byte {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	return append(buf, '\n')
}

// sweepMGL measures the MGL stage across worker counts — the same
// instance as BenchmarkMGLThroughput: fft_a at bench scale, MGL only
// (post-processing excluded from the measurement).
func sweepMGL(ws []int, scale float64) report {
	bench := mclegal.ISPDBenches()[6] // fft_a
	base := mclegal.ISPDDesign(bench, scale)

	rep := report{
		Bench:     "MGLThroughput",
		Design:    bench.Name,
		Scale:     scale,
		Cells:     base.MovableCount(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}

	var nsW1 int64
	for _, w := range ws {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				if _, err := mclegal.Legalize(d, mclegal.Options{
					TotalDisplacement: true, Workers: w,
					SkipMaxDisp: true, SkipRefine: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		if nsW1 == 0 {
			// Baseline for the speedup column: the first (serial) run.
			nsW1 = ns
		}
		rr := mglRun{
			Workers:     w,
			NsPerOp:     ns,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			CellsPerSec: float64(rep.Cells) * 1e9 / float64(ns),
			SpeedupVsW1: float64(nsW1) / float64(ns),
		}
		rep.Runs = append(rep.Runs, rr)
		log.Printf("workers=%d (gomaxprocs %d)  %12d ns/op  %8d allocs/op  %10.0f cells/sec  %.2fx",
			w, rr.GOMAXPROCS, rr.NsPerOp, rr.AllocsPerOp, rr.CellsPerSec, rr.SpeedupVsW1)
	}
	return rep
}

// sweepShards measures the sharded pipeline across shard concurrencies
// on the multi-fence shard suite, recording the per-region wall-clock
// breakdown (from an instrumented extra run outside the measurement).
func sweepShards(ss []int, scale float64) shardReport {
	bench := mclegal.ShardBenches()[0] // shard_s
	base := mclegal.ShardDesign(bench, scale)
	// Force a real multi-slab plan even at smoke scales: aim for about
	// four default-region slabs on top of the fence regions.
	plan := mclegal.ShardPlanOptions{
		SlabTargetCells: base.MovableCount()/4 + 1,
		MaxSlabUtil:     0.95,
	}
	opts := func(k int) mclegal.Options {
		return mclegal.Options{Workers: 1, Shards: k, ShardPlan: plan}
	}

	rep := shardReport{
		Bench:     "ShardScaling",
		Design:    bench.Name,
		Scale:     scale,
		Cells:     base.MovableCount(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}

	var nsS1 int64
	for _, k := range ss {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				if _, err := mclegal.Legalize(d, opts(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		if nsS1 == 0 {
			nsS1 = ns
		}
		rr := shardRun{
			Shards:      k,
			NsPerOp:     ns,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			CellsPerSec: float64(rep.Cells) * 1e9 / float64(ns),
			SpeedupVsS1: float64(nsS1) / float64(ns),
		}
		// Instrumented run for the per-shard breakdown.
		d := base.Clone()
		res, err := mclegal.Legalize(d, opts(k))
		if err != nil {
			log.Fatal(err)
		}
		rr.Regions = len(res.Shards)
		for _, sh := range res.Shards {
			var sum int64
			for _, tm := range sh.Timings {
				sum += tm.Duration.Nanoseconds()
			}
			rr.Detail = append(rr.Detail, shardDetail{Name: sh.Name, Cells: sh.Cells, StageNs: sum})
			rr.SumShardNs += sum
			if sum > rr.MaxShardNs {
				rr.MaxShardNs = sum
			}
		}
		rep.Runs = append(rep.Runs, rr)
		log.Printf("shards=%d (gomaxprocs %d)  %12d ns/op  %10.0f cells/sec  %.2fx  (%d regions, critical path %dms of %dms)",
			k, rr.GOMAXPROCS, rr.NsPerOp, rr.CellsPerSec, rr.SpeedupVsS1,
			rr.Regions, rr.MaxShardNs/1e6, rr.SumShardNs/1e6)
	}
	return rep
}
