package main

import (
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"mclegal/internal/analysis"
	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// vetRun is one analyzer's share of a full-suite mclegal-vet run. The
// analyzers execute in suite order over ONE shared program, so NsPerOp
// is the analyzer's incremental cost: the first write-effect analyzer
// pays for the shared call-graph and effect summaries, and the later
// ones reuse the cached results — exactly the composition a real
// mclegal-vet invocation pays.
type vetRun struct {
	Analyzer    string `json:"analyzer"`
	NsPerOp     int64  `json:"ns_per_op"`
	Diagnostics int    `json:"diagnostics"`
}

type vetReport struct {
	Bench     string `json:"bench"`
	Packages  int    `json:"packages"`
	NumCPU    int    `json:"numcpu"`
	GoVersion string `json:"goversion"`
	// LoadNs is the one-time cost of loading and type-checking the
	// scoped program; TotalNs is load plus every analyzer.
	LoadNs  int64    `json:"load_ns"`
	TotalNs int64    `json:"total_ns"`
	Runs    []vetRun `json:"runs"`
}

// sweepVet times the full analyzer suite over the same scoped program
// the suite test and the CI vet-effects job use: the union of every
// analyzer's scope list plus the write-effect and hot-path closures.
func sweepVet() vetReport {
	root, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	seen := make(map[string]bool)
	var paths []string
	for _, set := range [][]string{
		scope.DeterministicCore,
		scope.FloatCritical,
		scope.GateBoundary,
		scope.CancellationAware,
		scope.ConcurrencyScope,
		scope.WriteEffectClosure,
		scope.HotPathClosure,
	} {
		for _, p := range set {
			full := p
			if !strings.HasPrefix(full, "mclegal/") {
				full = "mclegal/" + full
			}
			if !seen[full] {
				seen[full] = true
				paths = append(paths, full)
			}
		}
	}
	sort.Strings(paths)

	rep := vetReport{
		Bench:     "VetSuite",
		Packages:  len(paths),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	start := time.Now()
	prog, err := framework.LoadProgram(framework.NewLoader("mclegal", root), paths)
	if err != nil {
		log.Fatal(err)
	}
	rep.LoadNs = time.Since(start).Nanoseconds()

	for _, a := range analysis.All() {
		t0 := time.Now()
		diags, err := prog.Run([]*framework.Analyzer{a})
		if err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
		rep.Runs = append(rep.Runs, vetRun{
			Analyzer:    a.Name,
			NsPerOp:     time.Since(t0).Nanoseconds(),
			Diagnostics: len(diags),
		})
	}
	rep.TotalNs = time.Since(start).Nanoseconds()
	return rep
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, so benchjson can be run from anywhere inside the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
