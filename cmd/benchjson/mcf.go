// mcf mode: the solver-layer sweep behind BENCH_mcf.json. It measures
// the network-simplex pivot rules and the reusable-Solver/warm-start
// machinery over the three benchmark graph families (mcf/families.go)
// and cross-validates every configuration against the independent
// solvers before recording a single number: on each family's
// validation instance, simplex under all three pivot rules,
// cost-scaling, SSP, a warm Resolve round-trip, and (assignment only)
// the Hungarian matching solver must all report the same optimal cost,
// or the sweep aborts.
//
// SSP is benchmarked at the (smaller) validation size — its
// Bellman-Ford inner loop does not finish in sensible time at the
// simplex bench sizes — so every run records its own nodes/arcs; rows
// are only comparable at equal sizes.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"testing"

	"mclegal/internal/matching"
	"mclegal/internal/mcf"
)

// mcfRun is one measured configuration on one family.
type mcfRun struct {
	Solver string `json:"solver"`         // simplex | costscaling | ssp
	Rule   string `json:"rule,omitempty"` // pivot rule (simplex only)
	// Mode: cold-fresh allocates a solver per solve (the pre-Solver
	// code path), cold-reused solves the same shape on one Solver,
	// warm-resolve alternates a perturbation and its inverse through
	// Solver.Resolve.
	Mode        string  `json:"mode"`
	Nodes       int     `json:"nodes"`
	Arcs        int     `json:"arcs"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pivots      float64 `json:"pivots,omitempty"` // mean pivots per solve (simplex only)
	GOMAXPROCS  int     `json:"gomaxprocs"`
}

// mcfValidation records the cross-solver agreement that gates the
// family's benchmark rows.
type mcfValidation struct {
	Nodes int `json:"nodes"`
	Arcs  int `json:"arcs"`
	// Cost is the optimal objective every listed solver agreed on.
	Cost    int64    `json:"cost"`
	Solvers []string `json:"solvers"`
}

type mcfFamilySummary struct {
	Family string `json:"family"`
	Nodes  int    `json:"nodes"`
	Arcs   int    `json:"arcs"`
	// Pivot economy of warm starts: cold vs warm mean pivots under
	// first-eligible on the same perturbation sequence.
	ColdPivots     float64 `json:"cold_pivots"`
	WarmPivots     float64 `json:"warm_pivots"`
	WarmPivotRatio float64 `json:"warm_pivot_ratio"`
	// Allocation economy of Solver reuse vs a fresh solve.
	ColdAllocs   int64         `json:"cold_allocs_per_op"`
	ReusedAllocs int64         `json:"reused_allocs_per_op"`
	AllocRatio   float64       `json:"alloc_ratio"`
	Validation   mcfValidation `json:"validation"`
	Runs         []mcfRun      `json:"runs"`
}

type mcfReport struct {
	Bench     string             `json:"bench"`
	Smoke     bool               `json:"smoke,omitempty"`
	NumCPU    int                `json:"numcpu"`
	GoVersion string             `json:"goversion"`
	Families  []mcfFamilySummary `json:"families"`
}

// mcfFamily pairs a benchmark instance with the smaller validation
// instance the cross-solver agreement runs on.
type mcfFamily struct {
	name  string
	bench *mcf.Graph
	valid *mcf.Graph
	// assignN is the matrix size when the family is an assignment
	// instance (enables the Hungarian cross-check), 0 otherwise.
	assignN int
}

func mcfFamilies(smoke bool) []mcfFamily {
	if smoke {
		return []mcfFamily{
			{name: "refinement", bench: mcf.RefinementGraph(60, 7), valid: mcf.RefinementGraph(48, 3)},
			{name: "assignment", bench: mcf.AssignmentGraph(12, 9), valid: mcf.AssignmentGraph(10, 4), assignN: 10},
			{name: "circulation", bench: mcf.CirculationGraph(40, 160, 11), valid: mcf.CirculationGraph(32, 128, 5)},
		}
	}
	return []mcfFamily{
		{name: "refinement", bench: mcf.RefinementGraph(5000, 7), valid: mcf.RefinementGraph(300, 3)},
		{name: "assignment", bench: mcf.AssignmentGraph(150, 9), valid: mcf.AssignmentGraph(60, 4), assignN: 60},
		{name: "circulation", bench: mcf.CirculationGraph(2000, 10000, 11), valid: mcf.CirculationGraph(200, 800, 5)},
	}
}

var mcfRules = []mcf.PivotRule{mcf.FirstEligible, mcf.BlockSearch, mcf.CandidateList}

// sweepMCF measures the solver layer and returns the report committed
// as BENCH_mcf.json. Smoke mode shrinks every instance and clamps
// benchtime to one iteration so CI can exercise the full code path in
// seconds.
func sweepMCF(smoke bool) mcfReport {
	if smoke {
		// When running inside a test binary the testing flags already
		// exist; outside one they must be registered first.
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
		flag.Set("test.benchtime", "1x")
	}
	rep := mcfReport{
		Bench:     "MCFSolvers",
		Smoke:     smoke,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	for _, fam := range mcfFamilies(smoke) {
		rep.Families = append(rep.Families, sweepMCFFamily(fam))
	}
	return rep
}

func sweepMCFFamily(fam mcfFamily) mcfFamilySummary {
	sum := mcfFamilySummary{
		Family:     fam.name,
		Nodes:      fam.bench.NumNodes(),
		Arcs:       fam.bench.NumArcs(),
		Validation: validateMCFFamily(fam),
	}
	log.Printf("%s: %d nodes, %d arcs (validated cost %d at %d nodes)",
		fam.name, sum.Nodes, sum.Arcs, sum.Validation.Cost, sum.Validation.Nodes)

	g := fam.bench
	upsA := mcf.PerturbCosts(g, 0.25, 101)
	upsB := invertUpdates(g, upsA)

	for _, rule := range mcfRules {
		sum.Runs = append(sum.Runs, benchColdFresh(g, rule))
		sum.Runs = append(sum.Runs, benchColdReused(g, rule))
		sum.Runs = append(sum.Runs, benchWarmResolve(g, rule, upsA, upsB))
	}
	sum.Runs = append(sum.Runs, benchAltSolver(g, "costscaling", func() error {
		_, err := g.SolveCostScaling()
		return err
	}))
	// SSP at validation size only; its nodes/arcs fields say so.
	vg := fam.valid
	sum.Runs = append(sum.Runs, benchAltSolver(vg, "ssp", func() error {
		_, err := vg.SolveSSP()
		return err
	}))

	for _, r := range sum.Runs {
		if r.Solver != "simplex" || r.Rule != mcf.FirstEligible.String() {
			continue
		}
		switch r.Mode {
		case "cold-fresh":
			sum.ColdPivots = r.Pivots
			sum.ColdAllocs = r.AllocsPerOp
		case "cold-reused":
			sum.ReusedAllocs = r.AllocsPerOp
		case "warm-resolve":
			sum.WarmPivots = r.Pivots
		}
	}
	warmPiv := sum.WarmPivots
	if warmPiv < 1 { // a resolve that repairs without pivoting
		warmPiv = 1
	}
	sum.WarmPivotRatio = sum.ColdPivots / warmPiv
	reused := sum.ReusedAllocs
	if reused < 1 {
		reused = 1
	}
	sum.AllocRatio = float64(sum.ColdAllocs) / float64(reused)
	log.Printf("%s: warm pivot ratio %.1fx (%.0f cold -> %.1f warm), alloc ratio %.0fx (%d -> %d)",
		fam.name, sum.WarmPivotRatio, sum.ColdPivots, sum.WarmPivots,
		sum.AllocRatio, sum.ColdAllocs, sum.ReusedAllocs)
	return sum
}

// validateMCFFamily proves every solver configuration agrees on the
// validation instance's optimal cost, aborting the sweep otherwise.
func validateMCFFamily(fam mcfFamily) mcfValidation {
	g := fam.valid
	val := mcfValidation{Nodes: g.NumNodes(), Arcs: g.NumArcs()}
	check := func(name string, cost int64, err error) {
		if err != nil {
			log.Fatalf("%s validation: %s: %v", fam.name, name, err)
		}
		if len(val.Solvers) == 0 {
			val.Cost = cost
		} else if cost != val.Cost {
			log.Fatalf("%s validation: %s found cost %d, others found %d",
				fam.name, name, cost, val.Cost)
		}
		val.Solvers = append(val.Solvers, name)
	}
	for _, rule := range mcfRules {
		res, err := g.SolveWith(rule)
		if err == nil {
			if verr := g.VerifyOptimal(res); verr != nil {
				log.Fatalf("%s validation: simplex/%v certificate: %v", fam.name, rule, verr)
			}
		}
		var cost int64
		if res != nil {
			cost = res.Cost
		}
		check("simplex/"+rule.String(), cost, err)
	}
	res, err := g.SolveCostScaling()
	check("costscaling", costOf(res), err)
	res, err = g.SolveSSP()
	check("ssp", costOf(res), err)

	// Warm Resolve round-trip: perturb, resolve, compare against a cold
	// solve of the perturbed twin, revert, land back on val.Cost.
	sv := mcf.NewSolver()
	if _, err := sv.SolveWith(g, mcf.FirstEligible); err != nil {
		log.Fatalf("%s validation: warm setup: %v", fam.name, err)
	}
	ups := mcf.PerturbCosts(g, 0.3, 77)
	inv := invertUpdates(g, ups)
	warmRes, err := sv.Resolve(ups)
	if err != nil {
		log.Fatalf("%s validation: resolve: %v", fam.name, err)
	}
	coldRes, err := mcf.ApplyUpdates(g, ups).SolveWith(mcf.FirstEligible)
	if err != nil || warmRes.Cost != coldRes.Cost {
		log.Fatalf("%s validation: warm resolve cost %d, cold twin %v (err %v)",
			fam.name, warmRes.Cost, coldRes, err)
	}
	backRes, err := sv.Resolve(inv)
	check("simplex/warm-resolve", costOf(backRes), err)

	if fam.assignN > 0 {
		n := fam.assignN
		var msv matching.Solver
		_, total, ok := msv.MinCostPerfect(n, func(i, j int) int64 {
			return g.Arc(i*n + j).Cost
		})
		if !ok {
			log.Fatalf("%s validation: matching found no perfect assignment", fam.name)
		}
		check("matching/hungarian", total, nil)
	}
	return val
}

func costOf(res *mcf.Result) int64 {
	if res == nil {
		return 0
	}
	return res.Cost
}

// invertUpdates builds the update set that restores g's original
// costs/caps after ups has been applied.
func invertUpdates(g *mcf.Graph, ups []mcf.ArcUpdate) []mcf.ArcUpdate {
	inv := make([]mcf.ArcUpdate, len(ups))
	for i, u := range ups {
		arc := g.Arc(u.Arc)
		inv[i] = mcf.ArcUpdate{Arc: u.Arc, Cost: arc.Cost, Cap: arc.Cap}
	}
	return inv
}

func benchColdFresh(g *mcf.Graph, rule mcf.PivotRule) mcfRun {
	res, err := g.SolveWith(rule)
	if err != nil {
		log.Fatalf("cold-fresh %v: %v", rule, err)
	}
	pivots := res.Pivots
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.SolveWith(rule); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mcfRunFrom(g, "simplex", rule.String(), "cold-fresh", r, float64(pivots))
}

func benchColdReused(g *mcf.Graph, rule mcf.PivotRule) mcfRun {
	sv := mcf.NewSolver()
	res, err := sv.SolveWith(g, rule)
	if err != nil {
		log.Fatalf("cold-reused %v: %v", rule, err)
	}
	pivots := res.Pivots
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sv.SolveWith(g, rule); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mcfRunFrom(g, "simplex", rule.String(), "cold-reused", r, float64(pivots))
}

// benchWarmResolve alternates a perturbation and its inverse through
// one Solver so every measured iteration is a warm Resolve between two
// nearby instances. Pivot counts are averaged over a measured A/B
// window after the scratch arrays and basis cycle have settled.
func benchWarmResolve(g *mcf.Graph, rule mcf.PivotRule, upsA, upsB []mcf.ArcUpdate) mcfRun {
	sv := mcf.NewSolver()
	if _, err := sv.SolveWith(g, rule); err != nil {
		log.Fatalf("warm-resolve %v: %v", rule, err)
	}
	flip := 0
	step := func() error {
		ups := upsA
		if flip%2 == 1 {
			ups = upsB
		}
		flip++
		_, err := sv.ResolveWith(ups, rule)
		return err
	}
	for i := 0; i < 16; i++ { // settle the A/B cycle
		if err := step(); err != nil {
			log.Fatalf("warm-resolve %v warm-up: %v", rule, err)
		}
	}
	before := sv.Stats().TotalPivots
	const window = 8
	for i := 0; i < window; i++ {
		if err := step(); err != nil {
			log.Fatalf("warm-resolve %v: %v", rule, err)
		}
	}
	pivots := float64(sv.Stats().TotalPivots-before) / window
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mcfRunFrom(g, "simplex", rule.String(), "warm-resolve", r, pivots)
}

func benchAltSolver(g *mcf.Graph, name string, solve func() error) mcfRun {
	if err := solve(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mcfRunFrom(g, name, "", "cold-fresh", r, 0)
}

func mcfRunFrom(g *mcf.Graph, solver, rule, mode string, r testing.BenchmarkResult, pivots float64) mcfRun {
	run := mcfRun{
		Solver:      solver,
		Rule:        rule,
		Mode:        mode,
		Nodes:       g.NumNodes(),
		Arcs:        g.NumArcs(),
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Pivots:      pivots,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	label := run.Solver
	if rule != "" {
		label = fmt.Sprintf("%s/%s", solver, rule)
	}
	log.Printf("  %-28s %-12s %12d ns/op  %8d allocs/op  pivots %.1f",
		label, mode, run.NsPerOp, run.AllocsPerOp, run.Pivots)
	return run
}
