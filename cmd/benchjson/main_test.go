package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range [][]string{
		{"-mode", "bogus"},
		{"-workers", "zero,"},
		{"-workers", "0"},
		{"-mode", "shard", "-shards", "nope"},
		{"-mode", "shard", "-shards", "-1"},
		{"-no-such-flag"},
	} {
		var out bytes.Buffer
		if code := run(tc, &out); code != 2 {
			t.Errorf("run(%q) = %d, want 2", tc, code)
		}
	}
}

// A minimal shard sweep must produce a well-formed report with the
// per-shard breakdown and an honest per-run GOMAXPROCS.
func TestRunShardSweepToStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark measurement")
	}
	var out bytes.Buffer
	if code := run([]string{"-mode", "shard", "-shards", "1", "-scale", "0.002", "-out", "-"}, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep shardReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Runs) != 1 || rep.Runs[0].GOMAXPROCS < 1 || rep.Runs[0].Regions < 2 {
		t.Fatalf("report runs = %+v", rep.Runs)
	}
	if len(rep.Runs[0].Detail) != rep.Runs[0].Regions || rep.Runs[0].MaxShardNs == 0 {
		t.Errorf("missing per-shard breakdown: %+v", rep.Runs[0])
	}
}
