package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range [][]string{
		{"-mode", "bogus"},
		{"-workers", "zero,"},
		{"-workers", "0"},
		{"-mode", "shard", "-shards", "nope"},
		{"-mode", "shard", "-shards", "-1"},
		{"-no-such-flag"},
	} {
		var out bytes.Buffer
		if code := run(tc, &out); code != 2 {
			t.Errorf("run(%q) = %d, want 2", tc, code)
		}
	}
}

// The mcf smoke sweep must survive its own cross-solver validation and
// produce a well-formed report: all three families, simplex rows for
// every rule×mode, zero allocs on the reused paths, and an SSP row
// carrying its own (smaller) instance size.
func TestRunMCFSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark measurements")
	}
	var out bytes.Buffer
	if code := run([]string{"-mode", "mcf", "-smoke", "-out", "-"}, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep mcfReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if !rep.Smoke || len(rep.Families) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	for _, fam := range rep.Families {
		if len(fam.Runs) != 3*3+2 {
			t.Errorf("%s: %d runs, want 11", fam.Family, len(fam.Runs))
		}
		if len(fam.Validation.Solvers) < 6 {
			t.Errorf("%s: only %v validated", fam.Family, fam.Validation.Solvers)
		}
		for _, r := range fam.Runs {
			if r.Mode != "cold-fresh" && r.AllocsPerOp != 0 {
				t.Errorf("%s %s/%s %s: %d allocs/op, want 0",
					fam.Family, r.Solver, r.Rule, r.Mode, r.AllocsPerOp)
			}
			if r.Solver == "ssp" && r.Nodes >= fam.Nodes {
				t.Errorf("%s: ssp row claims bench size %d", fam.Family, r.Nodes)
			}
		}
	}
}

// A minimal shard sweep must produce a well-formed report with the
// per-shard breakdown and an honest per-run GOMAXPROCS.
func TestRunShardSweepToStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark measurement")
	}
	var out bytes.Buffer
	if code := run([]string{"-mode", "shard", "-shards", "1", "-scale", "0.002", "-out", "-"}, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep shardReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Runs) != 1 || rep.Runs[0].GOMAXPROCS < 1 || rep.Runs[0].Regions < 2 {
		t.Fatalf("report runs = %+v", rep.Runs)
	}
	if len(rep.Runs[0].Detail) != rep.Runs[0].Regions || rep.Runs[0].MaxShardNs == 0 {
		t.Errorf("missing per-shard breakdown: %+v", rep.Runs[0])
	}
}
