package main

import (
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"mclegal"
	"mclegal/internal/serve"
)

// serveRun is the latency profile of one endpoint under the serve
// sweep: Requests samples at the given client concurrency, with
// percentiles over per-request wall-clock latency.
type serveRun struct {
	Endpoint    string `json:"endpoint"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	// Errors counts non-2xx responses and transport failures; a healthy
	// sweep has zero.
	Errors int   `json:"errors"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

type serveReport struct {
	Bench       string     `json:"bench"`
	Design      string     `json:"design"`
	Scale       float64    `json:"scale"`
	Cells       int        `json:"cells"`
	MaxInflight int        `json:"max_inflight"`
	NumCPU      int        `json:"numcpu"`
	GoVersion   string     `json:"goversion"`
	Runs        []serveRun `json:"runs"`
}

// sweepServe profiles the legalization server end to end: an
// in-process httptest server with one resident design, driven over
// real HTTP. Rows cover the cheap control-plane endpoints, the three
// run endpoints (legalize both unsharded and sharded), and a
// concurrent-client legalize row that exercises the admission path.
func sweepServe(scale float64) serveReport {
	bench := mclegal.ISPDBenches()[6] // fft_a, same instance as the MGL sweep
	base := mclegal.ISPDDesign(bench, scale)

	s := serve.New(serve.Config{MaxInflight: 8, Workers: 1})
	s.AddDesign("bench", base.Clone())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep := serveReport{
		Bench:       "ServeLatency",
		Design:      bench.Name,
		Scale:       scale,
		Cells:       base.MovableCount(),
		MaxInflight: 8,
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
	}

	for _, target := range []struct {
		name, method, path string
		reqs, conc         int
	}{
		{"healthz", http.MethodGet, "/healthz", 200, 1},
		{"designs-list", http.MethodGet, "/designs", 100, 1},
		{"audit", http.MethodPost, "/audit/bench", 30, 1},
		{"evaluate", http.MethodPost, "/evaluate/bench", 30, 1},
		{"legalize", http.MethodPost, "/legalize/bench", 10, 1},
		{"legalize-sharded", http.MethodPost, "/legalize/bench?shards=2", 10, 1},
		{"legalize-concurrent", http.MethodPost, "/legalize/bench", 16, 4},
	} {
		rr := measureEndpoint(ts.URL, target.method, target.path, target.reqs, target.conc)
		rr.Endpoint = target.name
		rep.Runs = append(rep.Runs, rr)
		log.Printf("%-20s %5d reqs x%d  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  max %8.2fms  errs %d",
			rr.Endpoint, rr.Requests, rr.Concurrency,
			float64(rr.P50Ns)/1e6, float64(rr.P90Ns)/1e6, float64(rr.P99Ns)/1e6,
			float64(rr.MaxNs)/1e6, rr.Errors)
	}
	return rep
}

// measureEndpoint fires reqs requests at the endpoint from conc
// concurrent clients and aggregates per-request latencies.
func measureEndpoint(baseURL, method, path string, reqs, conc int) serveRun {
	var mu sync.Mutex
	lat := make([]int64, 0, reqs)
	errs := 0

	work := make(chan struct{}, reqs)
	for i := 0; i < reqs; i++ {
		work <- struct{}{}
	}
	close(work)

	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				start := time.Now()
				req, err := http.NewRequest(method, baseURL+path, nil)
				if err != nil {
					log.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				ok := err == nil
				if ok {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode < 300
				}
				ns := time.Since(start).Nanoseconds()
				mu.Lock()
				lat = append(lat, ns)
				if !ok {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, ns := range lat {
		sum += ns
	}
	rr := serveRun{
		Requests:    len(lat),
		Concurrency: conc,
		Errors:      errs,
		P50Ns:       percentile(lat, 0.50),
		P90Ns:       percentile(lat, 0.90),
		P99Ns:       percentile(lat, 0.99),
	}
	if n := len(lat); n > 0 {
		rr.MaxNs = lat[n-1]
		rr.MeanNs = sum / int64(n)
	}
	return rr
}

// percentile reads the q-quantile from an ascending-sorted sample
// (nearest-rank method).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}
