package mclegal_test

import (
	"fmt"

	"mclegal"
)

// ExampleLegalize runs the full three-stage pipeline on a small
// generated instance and prints the outcome.
func ExampleLegalize() {
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name:    "example",
		Seed:    1,
		Counts:  [4]int{200, 20, 5, 2}, // cells of heights 1..4
		Density: 0.6,
	})
	res, err := mclegal.Legalize(d, mclegal.Options{Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	violations, _ := mclegal.Audit(d)
	fmt.Printf("legal: %v\n", len(violations) == 0)
	fmt.Printf("placed: %d cells\n", res.MGLStats.Placed)
	// Output:
	// legal: true
	// placed: 227 cells
}

// ExampleDesign_manual builds a design by hand: two cells whose GP
// positions overlap, which the legalizer separates minimally.
func ExampleDesign_manual() {
	d := &mclegal.Design{
		Name: "manual",
		Tech: mclegal.Tech{SiteW: 10, RowH: 80, NumSites: 20, NumRows: 2},
		Types: []mclegal.CellType{
			{Name: "INV", Width: 2, Height: 1},
		},
	}
	d.Cells = []mclegal.Cell{
		{Name: "a", Type: 0, GX: 5, GY: 0, X: 5, Y: 0},
		{Name: "b", Type: 0, GX: 5, GY: 0, X: 5, Y: 0}, // same GP spot
	}
	if _, err := mclegal.Legalize(d, mclegal.Options{Workers: 1}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("a=(%d,%d) b=(%d,%d)\n",
		d.Cells[0].X, d.Cells[0].Y, d.Cells[1].X, d.Cells[1].Y)
	// Output:
	// a=(5,0) b=(3,0)
}
