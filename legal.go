// Package mclegal is a routability-driven and fence-aware legalizer for
// mixed-cell-height standard-cell placements, a from-scratch Go
// implementation of Li, Chow, Chen, Young and Yu, "Routability-Driven
// and Fence-Aware Legalization for Mixed-Cell-Height Circuits",
// DAC 2018.
//
// The flow has three stages (paper Figure 2):
//
//  1. multi-row global legalization (MGL): window-based cell insertion
//     minimizing displacement from the global-placement positions via
//     piecewise-linear displacement curves;
//  2. maximum-displacement optimization: min-cost bipartite matching of
//     same-type cells inside each fence region;
//  3. fixed-row-and-order refinement: a dual min-cost-flow that
//     simultaneously optimizes average and maximum displacement, with
//     feasible ranges keeping pins clear of P/G rails.
//
// Quick start:
//
//	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
//		Name: "demo", Seed: 1, Counts: [4]int{1000, 100, 20, 10},
//		Density: 0.6, Routability: true,
//	})
//	res, err := mclegal.Legalize(d, mclegal.Options{Routability: true})
//
// The package is a facade over the internal implementation packages;
// everything needed by a downstream user is re-exported here.
package mclegal

import (
	"context"
	"io"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/flow"
	"mclegal/internal/gp"
	"mclegal/internal/model"
	"mclegal/internal/plot"
	"mclegal/internal/route"
	"mclegal/internal/seg"
	"mclegal/internal/shard"
	"mclegal/internal/stage"
)

// Core data model.
type (
	// Design is a complete legalization instance: technology, cell
	// library, cells, nets, fences, blockages and IO pins.
	Design = model.Design
	// Tech describes the placement grid and P/G rail geometry.
	Tech = model.Tech
	// CellType is one standard-cell master.
	CellType = model.CellType
	// Cell is one placed (or to-be-placed) instance.
	Cell = model.Cell
	// PinShape is a signal-pin rectangle of a cell type.
	PinShape = model.PinShape
	// Net connects cells for HPWL accounting.
	Net = model.Net
	// NetPin is one net connection.
	NetPin = model.NetPin
	// Fence is a named fence region.
	Fence = model.Fence
	// IOPin is a fixed terminal shape.
	IOPin = model.IOPin
	// CellID indexes Design.Cells.
	CellID = model.CellID
	// CellTypeID indexes Design.Types.
	CellTypeID = model.CellTypeID
	// FenceID identifies a fence region (0 = default region).
	FenceID = model.FenceID
)

// Pipeline configuration and results.
type (
	// Options configures the three-stage legalization pipeline; its
	// Validate method checks ranges and applies defaults.
	Options = flow.Options
	// Result carries metrics, violations, score and per-stage timings.
	Result = flow.Result
	// Metrics aggregates the displacement measures of paper Eq. (2).
	Metrics = eval.Metrics
	// Violations counts pin access/short and edge-spacing violations.
	Violations = route.Violations
	// ShardPlanOptions tunes the shard decomposition used when
	// Options.Shards > 0 (slab size target, utilization guard).
	ShardPlanOptions = shard.Options
	// ShardOutcome is one shard's slice of a sharded Result.
	ShardOutcome = flow.ShardOutcome
)

// ParseShards parses a -shards flag value: a non-negative shard
// concurrency, or "auto" for the machine's CPU count; 0 selects the
// monolithic path. Set the result as Options.Shards.
func ParseShards(s string) (int, error) { return flow.ParseShards(s) }

// Pipeline observability (see Options.Observer): observers receive a
// StageStart event when a stage begins and a StageFinish event — with
// the stage's duration, throughput and work counters — when it ends.
type (
	// StageObserver receives stage lifecycle callbacks.
	StageObserver = stage.Observer
	// StageStart announces a stage about to run.
	StageStart = stage.StartEvent
	// StageFinish reports a completed (or failed) stage.
	StageFinish = stage.FinishEvent
)

// Resilience layer (see docs/ROBUSTNESS.md): legality gates, recovery
// policies and the deterministic fault-injection harness.
type (
	// RecoveryPolicy selects what a failed stage does to the run; set it
	// on Options.Recovery.
	RecoveryPolicy = stage.RecoveryPolicy
	// RunStatus is the trust verdict of a run (Result.Status).
	RunStatus = stage.Status
	// GateReport records one gate intervention: the stage, why it was
	// rolled back, and what the recovery policy did about it.
	GateReport = stage.GateReport
	// GateError is the typed error a Strict (or exhausted Fallback) run
	// fails with; its Report names the offending stage.
	GateError = stage.GateError
	// DeadlineError is the typed error a run fails with when its
	// context deadline budget expires mid-pipeline — distinct from an
	// explicit cancellation, which surfaces as context.Canceled.
	DeadlineError = flow.DeadlineError
	// FaultInjector deterministically forces failures at the pipeline's
	// injection points (Options.Faults); nil disables injection.
	FaultInjector = faults.Injector
	// FaultPoint names one injection point.
	FaultPoint = faults.Point
)

// Recovery policies for Options.Recovery and the statuses they yield.
const (
	// RecoverStrict fails the run on the first gate failure.
	RecoverStrict = stage.RecoverStrict
	// RecoverFallback runs per-stage fallback chains before giving up.
	RecoverFallback = stage.RecoverFallback
	// RecoverBestEffort never errors; unrecoverable runs end partial.
	RecoverBestEffort = stage.RecoverBestEffort

	// StatusLegal: every stage passed its gate.
	StatusLegal = stage.StatusLegal
	// StatusRecovered: a fallback or safe skip repaired the run.
	StatusRecovered = stage.StatusRecovered
	// StatusPartial: recovery was exhausted; the result is the best
	// known state, faithfully reported as not verified legal.
	StatusPartial = stage.StatusPartial
)

// ParseRecoveryPolicy parses "strict", "fallback" or "besteffort"
// (case-insensitive; "best-effort" is accepted too).
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) { return stage.ParsePolicy(s) }

// NewFaultInjector returns an empty (inert) fault injector; arm points
// on it and set it as Options.Faults.
func NewFaultInjector() *FaultInjector { return faults.New() }

// NewLogObserver returns an observer writing human-readable per-stage
// progress lines to w.
func NewLogObserver(w io.Writer) StageObserver { return stage.NewLogObserver(w) }

// NewJSONObserver returns an observer emitting one JSON object per
// stage event line to w (the `cmd/legalize -progress json` format).
func NewJSONObserver(w io.Writer) StageObserver { return stage.NewJSONObserver(w) }

// MultiObserver fans stage events out to several observers.
func MultiObserver(obs ...StageObserver) StageObserver { return stage.MultiObserver(obs...) }

// Benchmark generation.
type (
	// BenchmarkParams parametrizes the synthetic instance generator.
	BenchmarkParams = bmark.Params
	// Bench names one published suite instance with its statistics.
	Bench = bmark.Bench
)

// Legalize runs the full pipeline on d in place and returns the
// evaluation of the result.
func Legalize(d *Design, opt Options) (Result, error) { return flow.Run(d, opt) }

// LegalizeContext is Legalize under a context: long runs can be
// cancelled or deadlined mid-stage. On cancellation it returns
// ctx.Err() promptly together with a partial Result (per-stage timings
// and the artifacts of every stage that ran), and the design is left
// consistent — already-legalized cells keep their positions — though
// generally not legal.
func LegalizeContext(ctx context.Context, d *Design, opt Options) (Result, error) {
	return flow.RunContext(ctx, d, opt)
}

// Evaluate scores an already-legal placement. hpwlBefore should be the
// HPWL measured at the GP positions (see HPWL).
func Evaluate(d *Design, hpwlBefore int64) Result { return flow.Evaluate(d, hpwlBefore) }

// Audit returns all hard-legality violations of the current placement
// (nil/empty means legal): overlaps, off-grid cells, fence and P/G
// parity violations.
func Audit(d *Design) ([]string, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, v := range eval.Audit(d, grid) {
		out = append(out, v.String())
	}
	return out, nil
}

// Measure computes the displacement metrics of the current placement.
func Measure(d *Design) Metrics { return eval.Measure(d) }

// HPWL returns the total half-perimeter wirelength in DBU.
func HPWL(d *Design) int64 { return eval.HPWL(d) }

// CountViolations counts the routability soft-constraint violations of
// the current placement.
func CountViolations(d *Design) Violations { return route.NewChecker(d).Count() }

// GenerateBenchmark builds a deterministic synthetic instance.
func GenerateBenchmark(p BenchmarkParams) *Design { return bmark.Generate(p) }

// ContestBenches lists the ICCAD 2017 suite (paper Table 1).
func ContestBenches() []Bench { return bmark.ContestBenches() }

// ISPDBenches lists the ISPD 2015-derived suite (paper Table 2).
func ISPDBenches() []Bench { return bmark.ISPDBenches() }

// ShardBenches lists the sharding suite (multi-fence synthetics up to
// a million cells, sized for the shard-scaling sweep).
func ShardBenches() []Bench { return bmark.ShardBenches() }

// ShardDesign generates one shard-suite instance at the given scale.
func ShardDesign(b Bench, scale float64) *Design { return bmark.ShardDesign(b, scale) }

// ContestDesign generates one Table 1 instance at the given scale.
func ContestDesign(b Bench, scale float64) *Design { return bmark.ContestDesign(b, scale) }

// ISPDDesign generates one Table 2 instance at the given scale.
func ISPDDesign(b Bench, scale float64) *Design { return bmark.ISPDDesign(b, scale) }

// ReadDesign parses a design in the .mcl text format.
func ReadDesign(r io.Reader) (*Design, error) { return bmark.Read(r) }

// WriteDesign serializes a design in the .mcl text format.
func WriteDesign(w io.Writer, d *Design) error { return bmark.Write(w, d) }

// PlotOptions configures WriteSVG.
type PlotOptions = plot.Options

// WriteSVG renders the design's current placement as an SVG image
// (rows, fences, macros, rails, cells colored by height, optional
// displacement vectors).
func WriteSVG(w io.Writer, d *Design, opt PlotOptions) error { return plot.SVG(w, d, opt) }

// GPOptions configures the bundled quadratic global placer.
type GPOptions = gp.Options

// GlobalPlace derives GP positions from the design's netlist (quadratic
// placement with density spreading) and writes them to every movable
// cell's GX/GY. The paper's legalizer consumes such a GP solution; use
// this when a design has nets but no meaningful GP positions.
func GlobalPlace(d *Design, opt GPOptions) { gp.Place(d, opt) }
