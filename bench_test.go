// Benchmarks regenerating (at reduced scale) every table and figure of
// the paper's evaluation, plus ablations of the design choices called
// out in DESIGN.md. The full-size printed tables come from
// cmd/experiments; these benches measure the same code paths under
// `go test -bench`.
package mclegal_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mclegal"
	"mclegal/internal/abacus"
	"mclegal/internal/baseline"
	"mclegal/internal/eval"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mcf"
	"mclegal/internal/mgl"
	"mclegal/internal/refine"
	"mclegal/internal/seg"
)

// benchScale keeps `go test -bench=.` tractable on one core; the
// cmd/experiments tool runs the suites at larger scales.
const benchScale = 0.01

// Representative picks: the densest, a fence-heavy one, a small one.
var table1Picks = []int{0, 8, 10, 14} // des_perf_1, fft_2_md2, fft_a_md3, pci_b_md2
var table2Picks = []int{4, 6, 13, 14} // fft_1, fft_a, pci_bridge32_a, pci_bridge32_b

var (
	contestOnce  sync.Once
	contestCache []*mclegal.Design
	ispdOnce     sync.Once
	ispdCache    []*mclegal.Design
)

func contestDesigns() []*mclegal.Design {
	contestOnce.Do(func() {
		bs := mclegal.ContestBenches()
		for _, i := range table1Picks {
			contestCache = append(contestCache, mclegal.ContestDesign(bs[i], benchScale))
		}
	})
	return contestCache
}

func ispdDesigns() []*mclegal.Design {
	ispdOnce.Do(func() {
		bs := mclegal.ISPDBenches()
		for _, i := range table2Picks {
			ispdCache = append(ispdCache, mclegal.ISPDDesign(bs[i], benchScale))
		}
	})
	return ispdCache
}

// BenchmarkTable1 regenerates the Table 1 comparison: the full
// routability-aware flow vs the contest-champion stand-in.
func BenchmarkTable1(b *testing.B) {
	ours := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var avg, max float64
			var pins int
			for i := 0; i < b.N; i++ {
				avg, max, pins = 0, 0, 0
				for _, base := range contestDesigns() {
					d := base.Clone()
					res, err := mclegal.Legalize(d, mclegal.Options{Routability: true, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					avg += res.Metrics.AvgDisp
					max += res.Metrics.MaxDisp
					pins += res.Violations.Pin()
				}
			}
			n := float64(len(contestDesigns()))
			b.ReportMetric(avg/n, "avgdisp/rows")
			b.ReportMetric(max/n, "maxdisp/rows")
			b.ReportMetric(float64(pins)/n, "pinviol/design")
		}
	}
	b.Run("ours", ours(1))
	b.Run("ours-numcpu", ours(runtime.NumCPU()))
	b.Run("champion", func(b *testing.B) {
		var avg, max float64
		var pins int
		for i := 0; i < b.N; i++ {
			avg, max, pins = 0, 0, 0
			for _, base := range contestDesigns() {
				d := base.Clone()
				if err := baseline.Champion(d, 1); err != nil {
					b.Fatal(err)
				}
				m := eval.Measure(d)
				avg += m.AvgDisp
				max += m.MaxDisp
				pins += mclegal.CountViolations(d).Pin()
			}
		}
		n := float64(len(contestDesigns()))
		b.ReportMetric(avg/n, "avgdisp/rows")
		b.ReportMetric(max/n, "maxdisp/rows")
		b.ReportMetric(float64(pins)/n, "pinviol/design")
	})
}

// BenchmarkTable2 regenerates the Table 2 comparison: total
// displacement of ours vs the three reimplemented baselines.
func BenchmarkTable2(b *testing.B) {
	type algo struct {
		name string
		run  func(*mclegal.Design) error
	}
	algos := []algo{
		{"MLLImp", func(d *mclegal.Design) error { return baseline.MLLImp(d, 1) }},
		{"AbacusExt", baseline.AbacusExt},
		{"ChenLike", baseline.ChenLike},
		{"ours", func(d *mclegal.Design) error {
			_, err := mclegal.Legalize(d, mclegal.Options{TotalDisplacement: true, Workers: 1})
			return err
		}},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, base := range ispdDesigns() {
					d := base.Clone()
					if err := a.run(d); err != nil {
						b.Fatal(err)
					}
					total += eval.Measure(d).TotalDispSites
				}
			}
			b.ReportMetric(total, "totaldisp/sites")
		})
	}
}

// BenchmarkTable3 regenerates the post-processing ablation.
func BenchmarkTable3(b *testing.B) {
	run := func(b *testing.B, skip bool) {
		var avg, max float64
		for i := 0; i < b.N; i++ {
			avg, max = 0, 0
			for _, base := range contestDesigns() {
				d := base.Clone()
				res, err := mclegal.Legalize(d, mclegal.Options{
					Routability: true, Workers: 1,
					SkipMaxDisp: skip, SkipRefine: skip,
				})
				if err != nil {
					b.Fatal(err)
				}
				avg += res.Metrics.AvgDisp
				max += res.Metrics.MaxDisp
			}
		}
		n := float64(len(contestDesigns()))
		b.ReportMetric(avg/n, "avgdisp/rows")
		b.ReportMetric(max/n, "maxdisp/rows")
	}
	b.Run("MGLOnly", func(b *testing.B) { run(b, true) })
	b.Run("FullFlow", func(b *testing.B) { run(b, false) })
}

// BenchmarkFigure6 measures the matching stage in isolation on an
// MGL-legalized placement (the before/after max-displacement series).
func BenchmarkFigure6(b *testing.B) {
	base := contestDesigns()[1].Clone()
	if _, err := mclegal.Legalize(base, mclegal.Options{
		Routability: true, Workers: 1, SkipMaxDisp: true, SkipRefine: true,
	}); err != nil {
		b.Fatal(err)
	}
	before := eval.Measure(base).MaxDisp
	var after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		maxdisp.Optimize(d, maxdisp.Options{})
		after = eval.Measure(d).MaxDisp
	}
	b.ReportMetric(before, "maxdisp-before/rows")
	b.ReportMetric(after, "maxdisp-after/rows")
}

// BenchmarkAblationOrder compares MGL cell-ordering policies.
func BenchmarkAblationOrder(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    mgl.OrderPolicy
	}{
		{"TallestFirst", mgl.TallestFirst},
		{"GPLeftToRight", mgl.GPLeftToRight},
		{"WidestAreaFirst", mgl.WidestAreaFirst},
	} {
		b.Run(pol.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				d := contestDesigns()[1].Clone()
				res, err := mclegal.Legalize(d, mclegal.Options{
					Routability: true, Workers: 1,
					MGL: mgl.Options{Order: pol.p},
				})
				if err != nil {
					b.Fatal(err)
				}
				avg = res.Metrics.AvgDisp
			}
			b.ReportMetric(avg, "avgdisp/rows")
		})
	}
}

// BenchmarkAblationDelta0 sweeps the φ threshold of Eq. (3).
func BenchmarkAblationDelta0(b *testing.B) {
	base := contestDesigns()[1].Clone()
	if _, err := mclegal.Legalize(base, mclegal.Options{
		Routability: true, Workers: 1, SkipMaxDisp: true, SkipRefine: true,
	}); err != nil {
		b.Fatal(err)
	}
	for _, d0 := range []float64{2, 10, 40} {
		b.Run(map[float64]string{2: "d0=2", 10: "d0=10", 40: "d0=40"}[d0], func(b *testing.B) {
			var avg, max float64
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				maxdisp.Optimize(d, maxdisp.Options{Delta0Rows: d0})
				m := eval.Measure(d)
				avg, max = m.AvgDisp, m.MaxDisp
			}
			b.ReportMetric(avg, "avgdisp/rows")
			b.ReportMetric(max, "maxdisp/rows")
		})
	}
}

// BenchmarkAblationN0 sweeps the refinement's max-displacement weight.
func BenchmarkAblationN0(b *testing.B) {
	base := contestDesigns()[1].Clone()
	if _, err := mclegal.Legalize(base, mclegal.Options{
		Routability: true, Workers: 1, SkipRefine: true,
	}); err != nil {
		b.Fatal(err)
	}
	for _, n0 := range []int64{1, 32, 512} {
		b.Run(map[int64]string{1: "n0=1", 32: "n0=32", 512: "n0=512"}[n0], func(b *testing.B) {
			var avg, max float64
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				g2, _ := seg.Build(d)
				if _, err := refine.Optimize(d, g2, refine.Options{MaxDispWeight: n0}); err != nil {
					b.Fatal(err)
				}
				m := eval.Measure(d)
				avg, max = m.AvgDisp, m.MaxDisp
			}
			b.ReportMetric(avg, "avgdisp/rows")
			b.ReportMetric(max, "maxdisp/rows")
		})
	}
}

// BenchmarkAblationPivotRule compares the two network-simplex pivot
// rules on the refinement flow network.
func BenchmarkAblationPivotRule(b *testing.B) {
	// Build a representative refinement graph once via a legalized
	// instance, then solve it under both rules.
	d := ispdDesigns()[0].Clone()
	if _, err := mclegal.Legalize(d, mclegal.Options{
		TotalDisplacement: true, Workers: 1, SkipRefine: true,
	}); err != nil {
		b.Fatal(err)
	}
	build := func() *mcf.Graph {
		// A long-chain min-cost-flow akin to the refinement network.
		g := mcf.NewGraph(1001)
		for i := 0; i < 1000; i++ {
			g.AddArc(i, 1000, 4, int64(i%97))
			g.AddArc(1000, i, 4, -int64(i%97))
			if i > 0 {
				g.AddArc(i-1, i, 1<<20, -3)
			}
		}
		return g
	}
	for _, rule := range []struct {
		name string
		r    mcf.PivotRule
	}{{"FirstEligible", mcf.FirstEligible}, {"BlockSearch", mcf.BlockSearch}} {
		b.Run(rule.name, func(b *testing.B) {
			var pivots int
			for i := 0; i < b.N; i++ {
				g := build()
				res, err := g.SolveWith(rule.r)
				if err != nil {
					b.Fatal(err)
				}
				pivots = res.Pivots
			}
			b.ReportMetric(float64(pivots), "pivots")
		})
	}
}

// BenchmarkAblationWindow sweeps the initial MGL window size.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{6, 16, 48} {
		b.Run(map[int]string{6: "w=6", 16: "w=16", 48: "w=48"}[w], func(b *testing.B) {
			var avg float64
			var retries int
			for i := 0; i < b.N; i++ {
				d := contestDesigns()[2].Clone()
				res, err := mclegal.Legalize(d, mclegal.Options{
					Routability: true, Workers: 1,
					MGL: mgl.Options{WindowW: w},
				})
				if err != nil {
					b.Fatal(err)
				}
				avg = res.Metrics.AvgDisp
				retries = res.MGLStats.WindowRetries
			}
			b.ReportMetric(avg, "avgdisp/rows")
			b.ReportMetric(float64(retries), "retries")
		})
	}
}

// BenchmarkAblationQualityGrowth isolates the quality-driven window
// growth: without it the bounded window horizon over-pays on sparse
// designs.
func BenchmarkAblationQualityGrowth(b *testing.B) {
	for _, qg := range []int{-1, 2, 6} {
		b.Run(map[int]string{-1: "off", 2: "qg=2", 6: "qg=6"}[qg], func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				d := ispdDesigns()[1].Clone()
				res, err := mclegal.Legalize(d, mclegal.Options{
					TotalDisplacement: true, Workers: 1,
					MGL: mgl.Options{QualityGrowths: qg},
				})
				if err != nil {
					b.Fatal(err)
				}
				total = res.Metrics.TotalDispSites
			}
			b.ReportMetric(total, "totaldisp/sites")
		})
	}
}

// BenchmarkAblationRefineVsAbacus compares the paper's linear-objective
// MCF refinement against the classic quadratic Abacus clustering
// (reference [8]) as the final x-shift pass.
func BenchmarkAblationRefineVsAbacus(b *testing.B) {
	base := ispdDesigns()[0].Clone()
	if _, err := mclegal.Legalize(base, mclegal.Options{
		TotalDisplacement: true, Workers: 1, SkipRefine: true,
	}); err != nil {
		b.Fatal(err)
	}
	b.Run("refineMCF", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			d := base.Clone()
			g, err := seg.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := refine.Optimize(d, g, refine.Options{Weights: refine.WeightUniform}); err != nil {
				b.Fatal(err)
			}
			total = eval.Measure(d).TotalDispSites
		}
		b.ReportMetric(total, "totaldisp/sites")
	})
	b.Run("abacus", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			d := base.Clone()
			g, err := seg.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			abacus.RefineRows(d, g)
			total = eval.Measure(d).TotalDispSites
		}
		b.ReportMetric(total, "totaldisp/sites")
	})
}

// mglThroughputRun is the shared body of the throughput benches: one
// MGL-only legalization of fft_a per iteration, reporting cells/sec so
// worker counts are comparable at a glance.
func mglThroughputRun(b *testing.B, workers int) {
	b.Helper()
	base := ispdDesigns()[1].Clone() // fft_a, low density
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := mclegal.Legalize(d, mclegal.Options{
			TotalDisplacement: true, Workers: workers, SkipMaxDisp: true, SkipRefine: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cells := float64(base.MovableCount())
	b.ReportMetric(cells, "cells")
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}

// BenchmarkMGLThroughput measures raw legalization throughput
// (cells/second) on a moderate-density instance, serial and at the
// machine's core count. Results are byte-identical across worker
// counts (see docs/PERFORMANCE.md); only the wall clock changes.
func BenchmarkMGLThroughput(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { mglThroughputRun(b, 1) })
	b.Run("workers=numcpu", func(b *testing.B) { mglThroughputRun(b, runtime.NumCPU()) })
}

// BenchmarkWorkersSweep sweeps the MGL worker count to expose the
// parallel-scaling trajectory; `make bench-json` persists the same
// sweep (via cmd/benchjson) into BENCH_mgl.json.
func BenchmarkWorkersSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { mglThroughputRun(b, w) })
	}
}
