package mclegal_test

import (
	"bytes"
	"testing"

	"mclegal"
)

func TestFacadeEndToEnd(t *testing.T) {
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name: "facade", Seed: 42,
		Counts:      [4]int{400, 40, 10, 4},
		Density:     0.6,
		NumFences:   1,
		FenceFrac:   0.5,
		NetFrac:     0.5,
		IOPins:      8,
		Routability: true,
	})
	before := mclegal.HPWL(d)
	res, err := mclegal.Legalize(d, mclegal.Options{Routability: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := mclegal.Audit(d); err != nil || len(v) > 0 {
		t.Fatalf("audit: %v %v", err, v)
	}
	if res.Score <= 0 || res.Metrics.AvgDisp <= 0 {
		t.Errorf("degenerate result: %+v", res.Metrics)
	}
	if got := mclegal.Evaluate(d, before); got.Score != res.Score {
		t.Errorf("Evaluate disagrees with Legalize: %v vs %v", got.Score, res.Score)
	}
	if mclegal.CountViolations(d).EdgeSpacing != 0 {
		t.Errorf("edge violations with routability enabled")
	}
}

func TestFacadeSuitesAndFormat(t *testing.T) {
	if len(mclegal.ContestBenches()) != 16 || len(mclegal.ISPDBenches()) != 20 {
		t.Fatalf("suite sizes wrong")
	}
	d := mclegal.ISPDDesign(mclegal.ISPDBenches()[6], 0.01)
	var buf bytes.Buffer
	if err := mclegal.WriteDesign(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := mclegal.ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || len(d2.Cells) != len(d.Cells) {
		t.Errorf("round trip mismatch")
	}
	_ = mclegal.ContestDesign(mclegal.ContestBenches()[10], 0.01)
}

func TestFacadeMeasure(t *testing.T) {
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name: "m", Seed: 7, Counts: [4]int{50, 0, 0, 0}, Density: 0.4,
	})
	m := mclegal.Measure(d)
	if m.AvgDisp != 0 {
		t.Errorf("GP placement should have zero displacement")
	}
}

func TestFacadeGlobalPlaceAndSVG(t *testing.T) {
	d := mclegal.GenerateBenchmark(mclegal.BenchmarkParams{
		Name: "gsvg", Seed: 5, Counts: [4]int{120, 12, 0, 0},
		Density: 0.5, NetFrac: 0.8, Macros: 1,
	})
	mclegal.GlobalPlace(d, mclegal.GPOptions{})
	if _, err := mclegal.Legalize(d, mclegal.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mclegal.WriteSVG(&buf, d, mclegal.PlotOptions{Displacement: true}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 500 {
		t.Errorf("suspiciously small SVG: %d bytes", buf.Len())
	}
}
