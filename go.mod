module mclegal

go 1.22
